"""Stage middleware: cross-cutting concerns, implemented exactly once.

Before the engine existed, deadline budgeting, circuit breaking, fault
injection, timing and retries were hand-threaded through three separate
pipelines (predictor, study runner, serve service), each with its own
subtly different ordering.  Here each concern is one small object wrapping
a stage invocation, and a caller's policy is just the tuple it passes to
:class:`StageRunner` — the serve service composes

    (DeadlineGate(), BreakerMiddleware(board),
     BudgetMiddleware(fraction, caps), FaultMiddleware(...))

while the study runner composes ``(TimingMiddleware(timer, ...),)``.

The chain contract: a middleware is called as ``mw(stage, deadline,
call_next)`` and must return the stage result; ``call_next(deadline)``
invokes the rest of the chain (possibly with a replacement deadline —
that is how :class:`BudgetMiddleware` scopes a stage to a sub-budget).
Order matters and is the *caller's* policy.  The serve ordering above
encodes two invariants the chaos tests pin:

* a request whose budget is already spent is rejected by
  :class:`DeadlineGate` *before* :class:`BreakerMiddleware` touches the
  breaker — a late request must never poison a healthy backend's failure
  window; and
* an overrun detected by :class:`BudgetMiddleware`'s post-call checkpoint
  raises *inside* the breaker's try block, so a stalled backend is
  recorded as that stage's failure while the request still has budget to
  serve a cheaper rung.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.util.retry import backoff_seconds

__all__ = [
    "StageRunner",
    "TimingMiddleware",
    "DeadlineGate",
    "BreakerMiddleware",
    "BudgetMiddleware",
    "FaultMiddleware",
    "RetryMiddleware",
]


class StageRunner:
    """Compose a middleware tuple around stage invocations.

    ``run(stage, deadline, fn)`` threads the call through every
    middleware outermost-first and finally invokes ``fn(deadline)`` with
    whatever deadline the chain settled on (``None`` means unbudgeted —
    every middleware must tolerate it, since the offline predictor runs
    without deadlines).
    """

    def __init__(self, middleware: tuple = ()):
        self.middleware = tuple(middleware)

    def run(self, stage: str, deadline, fn: Callable):
        def call(index: int, d):
            if index == len(self.middleware):
                return fn(d)
            mw = self.middleware[index]
            return mw(stage, d, lambda d2: call(index + 1, d2))

        return call(0, deadline)


class TimingMiddleware:
    """Book each stage's wall-clock into a :class:`~repro.util.timing.StageTimer`.

    Parameters
    ----------
    timer:
        The timer to book into.
    stages:
        Stages to time, or ``None`` for all.  The study engine times
        probe/execute/convolve here but *not* trace — the tracer books
        its own time (net of the cache-model share) through the timer the
        engine hands it, and double-booking would corrupt the breakdown.
    """

    def __init__(self, timer, stages: tuple[str, ...] | None = None):
        self.timer = timer
        self.stages = stages

    def __call__(self, stage, deadline, call_next):
        if self.stages is not None and stage not in self.stages:
            return call_next(deadline)
        with self.timer.time(stage):
            return call_next(deadline)


class DeadlineGate:
    """Reject a stage before it starts once the request budget is spent.

    Placed *outside* the breaker so that starvation caused by the request
    itself (earlier stages ate the budget) is never attributed to the
    backend about to be skipped.
    """

    def __call__(self, stage, deadline, call_next):
        if deadline is not None:
            deadline.checkpoint(stage)
        return call_next(deadline)


class BreakerMiddleware:
    """Gate the stage behind its circuit breaker and record the outcome.

    ``board`` is duck-typed (``board[stage]`` with
    ``allow``/``record_failure``/``record_success``) so the engine never
    imports the serve layer.  ``allow()`` raising (an open breaker) is
    *not* a recorded failure — the backend was never called.
    """

    def __init__(self, board):
        self.board = board

    def __call__(self, stage, deadline, call_next):
        breaker = self.board[stage]
        breaker.allow()
        try:
            out = call_next(deadline)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        return out


class BudgetMiddleware:
    """Scope the stage to a slice of the remaining request budget.

    The stage gets a child deadline capped at ``stage_fraction`` of what
    remains (and any absolute per-stage cap); the post-call checkpoint
    converts a stage that outran its slice — an injected stall, a slow
    backend — into a failure while the *request* still has budget left
    for a cheaper rung.
    """

    def __init__(self, stage_fraction: float, stage_timeouts: dict[str, float] | None = None):
        self.stage_fraction = stage_fraction
        # Held by reference, not copied: the serve layer shares its live
        # stage_timeouts mapping so runtime re-tuning reaches the chain.
        self.stage_timeouts = stage_timeouts if stage_timeouts is not None else {}

    def __call__(self, stage, deadline, call_next):
        if deadline is None:
            return call_next(None)
        budget = deadline.remaining() * self.stage_fraction
        cap = self.stage_timeouts.get(stage)
        if cap is not None:
            budget = min(budget, cap)
        sub = deadline.sub(budget, stage=stage)
        out = call_next(sub)
        sub.checkpoint(stage)
        return out


class FaultMiddleware:
    """Inject a :class:`~repro.util.faults.FaultPlan`'s scheduled chaos.

    Keyed per (stage, call number) so a seeded plan misbehaves in exactly
    the same places on every run.  ``plan`` is a zero-argument provider
    read on every call — chaos tests flip the live service's plan off
    mid-test and expect injection to stop immediately.  The stall goes
    through the injectable ``sleep`` so fake-clock tests advance time
    instead of waiting.
    """

    def __init__(
        self,
        plan: Callable[[], object],
        stages: tuple[str, ...],
        *,
        sleep: Callable[[float], None],
        label_prefix: str = "serve",
    ):
        self.plan = plan
        self.stages = tuple(stages)
        self.sleep = sleep
        self.label_prefix = label_prefix
        self._calls: dict[str, int] = {}
        self._lock = threading.Lock()

    def __call__(self, stage, deadline, call_next):
        plan = self.plan()
        if plan is not None and stage in self.stages:
            with self._lock:
                self._calls[stage] = self._calls.get(stage, 0) + 1
                call = self._calls[stage]
            label = f"{self.label_prefix}:{stage}"
            if plan.should_stall(label, call):
                self.sleep(plan.stall_seconds)
            if plan.should_crash(label, call):
                from repro.core.errors import WorkerCrashError

                raise WorkerCrashError(
                    f"injected crash in service stage {stage!r} (call {call})"
                )
        return call_next(deadline)


class RetryMiddleware:
    """Re-invoke a failed stage with the shared seeded backoff schedule.

    Opt-in (no default caller composes it): the study engine retries at
    chunk granularity — a whole application row re-dispatches, possibly
    to a rebuilt pool — and the serve layer degrades instead of retrying.
    Callers with idempotent, in-process stages (notebooks hammering a
    flaky store, soak harnesses) insert this inside their breaker so
    retries count as at most one failure.
    """

    def __init__(
        self,
        retries: int,
        *,
        retryable: tuple = (Exception,),
        sleep: Callable[[float], None],
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.retries = retries
        self.retryable = retryable
        self.sleep = sleep

    def __call__(self, stage, deadline, call_next):
        for attempt in range(self.retries + 1):
            try:
                return call_next(deadline)
            except self.retryable:
                if attempt >= self.retries:
                    raise
                self.sleep(backoff_seconds(attempt, "stage", stage))
