"""The staged prediction engine: one owner of the canonical dataflow.

Every prediction in this codebase — a one-shot library call, a study
cell, an online query — is the same pipeline::

    probe ─┐
    execute ├─> trace ─> cache model ─> convolve ─> metric evaluate
           ─┘

:class:`Engine` owns that dataflow once.  Callers declare *what* with a
:class:`~repro.engine.plan.MatrixPlan` or
:class:`~repro.engine.plan.PointPlan` and *policy* with a middleware
tuple (:mod:`repro.engine.middleware`); the engine decides stage order,
threads the :class:`~repro.tracing.store.TraceStore` and deadline into
the backends, and evaluates metrics through the declarative registry
(:mod:`repro.core.registry`).  The former per-caller pipelines —
``core/predictor.py``'s one-shot loop, ``study/runner.py``'s 900-line
batch engine, ``serve/service.py``'s rung executor — are now thin
clients that build plans.

Byte-identity is a hard contract: :meth:`Engine.run_matrix` performs the
exact operation sequence the pre-engine study runner did (same probe
order, same shared :class:`~repro.core.convolver.RateTable` per row, same
inlined signed-error expression), so studies, checkpoints and golden
baselines written before the refactor replay bit-for-bit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.apps.execution import executor_for
from repro.core.metrics import PredictionContext, predict_all, resolve_metrics
from repro.engine.middleware import StageRunner, TimingMiddleware
from repro.engine.plan import MatrixPlan, PointPlan, PredictionRecord, ProbeBundle
from repro.scenarios import BASE_SYSTEM, get_application, get_machine
from repro.probes.suite import probe_machine
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE, trace_application
from repro.tracing.store import TraceStore
from repro.util.options import CacheModel, Mode
from repro.util.timing import StageTimer

__all__ = ["Engine", "clear_row_cache"]

#: Row-level convolve memo: predict_all output keyed by the *identities* of
#: its inputs.  On the warm study path every input object recurs — metrics
#: are registry singletons, traces come from the in-memory trace cache,
#: probe bundles from the probe cache — so a repeat study row costs one
#: dict lookup instead of a full rate-table rebuild.  Each entry anchors
#: strong references to the keyed objects, which keeps their ids live for
#: exactly as long as the entry exists (an id can only be recycled after
#: the object is garbage collected), so identity keys can never alias.
_ROW_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_ROW_CACHE_MAX = 4096
_ROW_LOCK = threading.Lock()


def _predict_all_cached(metrics, trace, probes_row, base_probes, base_time, mode):
    key = (
        tuple(id(m) for m in metrics),
        id(trace),
        tuple(id(p) for p in probes_row),
        id(base_probes),
        base_time,
        mode,
    )
    with _ROW_LOCK:
        hit = _ROW_CACHE.get(key)
        if hit is not None:
            _ROW_CACHE.move_to_end(key)
            return hit[0]
    rows = predict_all(metrics, trace, probes_row, base_probes, base_time, mode)
    with _ROW_LOCK:
        _ROW_CACHE[key] = (
            rows,
            (tuple(metrics), trace, tuple(probes_row), base_probes),
        )
        while len(_ROW_CACHE) > _ROW_CACHE_MAX:
            _ROW_CACHE.popitem(last=False)
    return rows


def clear_row_cache() -> None:
    """Drop the row-level convolve memo (bench/test hook)."""
    with _ROW_LOCK:
        _ROW_CACHE.clear()

#: Stages the study path books wall-clock for via middleware; the trace
#: stage books itself (net of cache-model time) through the engine's
#: timer, so timing it again here would double-count.
_TIMED_MATRIX_STAGES = ("probe", "execute", "convolve")


class Engine:
    """Run prediction plans through the staged pipeline.

    Parameters
    ----------
    base_system:
        The base (tracing + Equation 1 anchor) system X0.
    mode, sample_size, noise, cache_model:
        Pipeline knobs; ``mode``/``cache_model`` are coerced to their
        validated enums so an invalid value fails here, not mid-run.
    store:
        Optional persistent trace/probe cache the engine threads into
        every backend call (the *only* place that wiring now lives).
    middleware:
        Stage middleware tuple applied to every stage invocation,
        outermost first (see :mod:`repro.engine.middleware`).
    """

    def __init__(
        self,
        base_system: str = BASE_SYSTEM,
        *,
        mode: str = "relative",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        noise: bool = True,
        cache_model: str = "analytic",
        store: TraceStore | None = None,
        middleware: tuple = (),
    ):
        self.base_machine = get_machine(base_system)
        self.mode = str(Mode.coerce(mode))
        self.sample_size = sample_size
        self.noise = noise
        self.cache_model = str(CacheModel.coerce(cache_model))
        self.store = store
        self.middleware = tuple(middleware)
        self._stages = StageRunner(self.middleware)
        self._base_executor = executor_for(self.base_machine, noise=noise)
        self._base_times: dict[tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # default backends (point plans may override probe/trace per plan)
    # ------------------------------------------------------------------
    def base_time(self, app, cpus: int) -> float:
        """Measured (simulated) base-system time ``T(X0, Y)``, cached."""
        key = (app.label, cpus)
        time = self._base_times.get(key)
        if time is None:
            time = self._base_executor.run(app, cpus).total_seconds
            self._base_times[key] = time
        return time

    def probe_bundle(self, app, cpus: int, target, deadline=None) -> ProbeBundle:
        """Default probe backend: target + base probes and the base time."""
        target_probes = probe_machine(target, store=self.store, deadline=deadline)
        base_probes = probe_machine(self.base_machine, store=self.store, deadline=deadline)
        if (app.label, cpus) not in self._base_times and deadline is not None:
            deadline.checkpoint("probe")
        return ProbeBundle(target_probes, base_probes, self.base_time(app, cpus))

    def trace(self, app, cpus: int, deadline=None, timer=None):
        """Default trace backend: the base-system transfer function."""
        return trace_application(
            app,
            cpus,
            self.base_machine,
            self.sample_size,
            cache_model=self.cache_model,
            store=self.store,
            timer=timer,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # point plans: one (application, cpus, machine, metric) query
    # ------------------------------------------------------------------
    def run_point(self, plan: PointPlan, deadline=None) -> float:
        """Predict one query, running only the stages the metric needs.

        The metric's registry-declared ``needs`` tuple drives the stage
        list: probe-only metrics (simple ratios, the balanced rating) are
        evaluated straight from the probe bundle — the tracer and
        convolver are never entered, which is what lets the serve layer
        keep answering from the probe cache when the convolver is down.
        """
        probe = plan.probe
        if probe is None:
            probe = lambda d: self.probe_bundle(plan.app, plan.cpus, plan.target, d)
        target_probes, base_probes, base_time = self._stages.run(
            "probe", deadline, probe
        )
        metric = plan.metric
        if "trace" not in metric.needs:
            return metric.predict(
                PredictionContext(
                    trace=None,
                    target_probes=target_probes,
                    base_probes=base_probes,
                    base_time=base_time,
                    mode=self.mode,
                )
            )
        trace_fn = plan.trace
        if trace_fn is None:
            trace_fn = lambda d: self.trace(plan.app, plan.cpus, d)
        trace = self._stages.run("trace", deadline, trace_fn)

        def convolve(d):
            if d is not None:
                d.checkpoint("convolve")
            return metric.predict_many(
                trace, [target_probes], base_probes, base_time, self.mode
            )[0]

        return self._stages.run("convolve", deadline, convolve)

    def run_row(self, plan: PointPlan, metrics, deadline=None) -> dict[int, float]:
        """All given metrics for one query, sharing probe/trace/rate work.

        The canonical many-metrics path (:func:`~repro.core.metrics.predict_all`
        shares one rate table across every predictive metric); the
        deprecated ``PerformancePredictor.predict_all_metrics`` alias
        delegates here.
        """
        metric_objs = resolve_metrics(metrics)
        probe = plan.probe
        if probe is None:
            probe = lambda d: self.probe_bundle(plan.app, plan.cpus, plan.target, d)
        target_probes, base_probes, base_time = self._stages.run(
            "probe", deadline, probe
        )
        trace = None
        if any("trace" in m.needs for m in metric_objs):
            trace_fn = plan.trace
            if trace_fn is None:
                trace_fn = lambda d: self.trace(plan.app, plan.cpus, d)
            trace = self._stages.run("trace", deadline, trace_fn)

        def convolve(d):
            if d is not None:
                d.checkpoint("convolve")
            return predict_all(
                metric_objs, trace, [target_probes], base_probes, base_time, self.mode
            )

        rows = self._stages.run("convolve", deadline, convolve)
        return {number: values[0] for number, values in rows.items()}

    # ------------------------------------------------------------------
    # matrix plans: the offline study block
    # ------------------------------------------------------------------
    def run_matrix(
        self, plan: MatrixPlan, *, timer: StageTimer | None = None, deadline=None
    ) -> tuple[list[PredictionRecord], dict[tuple[str, str, int], float]]:
        """Compute the (labels × systems) block of a study matrix.

        Each (application, cpus) row is traced once and priced against
        all eligible systems for **all** metrics in one shot
        (:func:`~repro.core.metrics.predict_all` shares the row's rate
        tensors across metrics); records are then emitted in the
        canonical (application, system, cpus, metric) order.  Per-system
        results are independent, so any partition of the matrix produces
        the same records cell-for-cell — that partition-invariance is
        what makes the study runner's chunked fan-out and checkpoint
        resume byte-identical to a serial run.

        ``deadline`` makes the block cooperative: probe and trace calls
        checkpoint mid-stage and abandon the matrix with
        :class:`~repro.core.errors.DeadlineExceededError` once the budget
        is spent.
        """
        t = timer if timer is not None else StageTimer()
        stages = StageRunner(
            (TimingMiddleware(t, stages=_TIMED_MATRIX_STAGES),) + self.middleware
        )
        base_machine = self.base_machine
        labels, systems = plan.labels, plan.systems

        def probe_all(d):
            base_probes = probe_machine(base_machine, store=self.store, deadline=d)
            machines = {system: get_machine(system) for system in systems}
            probes = {
                system: probe_machine(machine, store=self.store, deadline=d)
                for system, machine in machines.items()
            }
            return base_probes, machines, probes

        base_probes, machines, probes = stages.run("probe", deadline, probe_all)
        # Shared per-machine executors: their app-tensor and run_many memos
        # survive across every matrix this process runs.
        base_executor = executor_for(base_machine, noise=self.noise)
        executors = {
            system: executor_for(machine, noise=self.noise)
            for system, machine in machines.items()
        }
        metrics = resolve_metrics(plan.metrics)

        actuals: dict[tuple[str, str, int], float] = {}
        #: (label, system, cpus) -> predicted seconds per metric, in plan
        #: metric order.
        predictions: dict[tuple[str, str, int], list[float]] = {}
        for label in labels:
            app = get_application(label)
            eligible_rows = [
                (cpus, [s for s in systems if cpus <= machines[s].cpus])
                for cpus in plan.cpus_for(label, app.cpu_counts)
            ]
            # Paper leaves cells blank where no system is large enough.
            eligible_rows = [
                (cpus, eligible) for cpus, eligible in eligible_rows if eligible
            ]
            if not eligible_rows:
                continue

            def execute(d, app=app, eligible_rows=eligible_rows, label=label):
                # One batched executor pass per system covers the whole
                # appendix-table column for this application.
                for system in systems:
                    counts = [c for c, eligible in eligible_rows if system in eligible]
                    for res in executors[system].run_many(app, counts, detail=False):
                        actuals[(label, system, res.cpus)] = res.total_seconds
                return {
                    res.cpus: res.total_seconds
                    for res in base_executor.run_many(
                        app, [cpus for cpus, _ in eligible_rows], detail=False
                    )
                }

            base_times = stages.run("execute", deadline, execute)
            for cpus, eligible in eligible_rows:
                base_time = base_times[cpus]
                trace = stages.run(
                    "trace",
                    deadline,
                    lambda d, app=app, cpus=cpus: self.trace(app, cpus, d, timer=t),
                )
                probes_row = [probes[system] for system in eligible]
                rows = stages.run(
                    "convolve",
                    deadline,
                    lambda d, trace=trace, probes_row=probes_row, base_time=base_time: (
                        _predict_all_cached(
                            metrics, trace, probes_row, base_probes, base_time, self.mode
                        )
                    ),
                )
                per_system: dict[str, list[float]] = {s: [] for s in eligible}
                for metric in metrics:
                    for system, predicted in zip(eligible, rows[metric.number]):
                        per_system[system].append(predicted)
                for system, values in per_system.items():
                    predictions[(label, system, cpus)] = values

        records: list[PredictionRecord] = []
        observed: dict[tuple[str, str, int], float] = {}
        metric_numbers = [metric.number for metric in metrics]
        for label in labels:
            app = get_application(label)
            for system in systems:
                machine = machines[system]
                for cpus in plan.cpus_for(label, app.cpu_counts):
                    if cpus > machine.cpus:
                        continue
                    key = (label, system, cpus)
                    actual = actuals[key]
                    observed[key] = actual
                    # Inlined signed_error: executors guarantee actual > 0 and
                    # the metrics non-negative predictions, so the guard-free
                    # expression is exactly its value.
                    records.extend(
                        PredictionRecord(
                            label,
                            cpus,
                            system,
                            number,
                            actual,
                            predicted,
                            (predicted - actual) / actual * 100.0,
                        )
                        for number, predicted in zip(metric_numbers, predictions[key])
                    )
        return records, observed
