"""Result types reported by the synthetic probes.

These are the *only* data the predictive metrics may consume about a target
machine — the convolver never touches a :class:`~repro.machines.spec.MachineSpec`
directly (that would be peeking at hardware no real benchmarker can see).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.units import GB

__all__ = [
    "HplResult",
    "StreamResult",
    "GupsResult",
    "MapsCurve",
    "MapsResult",
    "NetbenchResult",
    "MachineProbes",
]


@dataclass(frozen=True)
class HplResult:
    """High-Performance LINPACK outcome for one processor.

    Attributes
    ----------
    rmax_flops:
        Sustained FLOP/s on the LU solve (the per-processor Rmax the paper
        uses as every predictive metric's FP issue rate).
    rpeak_flops:
        Theoretical peak FLOP/s.
    n:
        Matrix dimension used.
    seconds:
        Modelled solve time.
    """

    rmax_flops: float
    rpeak_flops: float
    n: int
    seconds: float

    @property
    def efficiency(self) -> float:
        """Rmax / Rpeak."""
        return self.rmax_flops / self.rpeak_flops


@dataclass(frozen=True)
class StreamResult:
    """STREAM bandwidths in B/s (per processor).

    ``triad`` is the figure of merit the paper's metrics use.
    """

    copy: float
    scale: float
    add: float
    triad: float
    array_bytes: float

    @property
    def bandwidth(self) -> float:
        """The headline STREAM number (triad), B/s."""
        return self.triad


@dataclass(frozen=True)
class GupsResult:
    """HPC Challenge RandomAccess outcome (per processor).

    Attributes
    ----------
    gups:
        Giga-updates per second.
    random_bandwidth:
        Useful random-access bandwidth in B/s (8 bytes per read or write;
        this is the rate the convolver prices random references with).
    table_bytes:
        Size of the update table.
    """

    gups: float
    random_bandwidth: float
    table_bytes: float


@dataclass(frozen=True)
class MapsCurve:
    """One MAPS curve: achieved bandwidth versus working-set size.

    Lookups interpolate linearly in log(size); working sets outside the
    probed range clamp to the curve ends.
    """

    sizes: np.ndarray
    bandwidths: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=float)
        bws = np.asarray(self.bandwidths, dtype=float)
        if sizes.ndim != 1 or sizes.shape != bws.shape or sizes.size < 2:
            raise ValueError("curve needs matching 1-D sizes/bandwidths, >= 2 points")
        if np.any(np.diff(sizes) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(bws <= 0):
            raise ValueError("bandwidths must be positive")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "bandwidths", bws)
        object.__setattr__(self, "_log_sizes", np.log(sizes))

    def lookup(self, working_set: float) -> float:
        """Bandwidth (B/s) at ``working_set`` bytes."""
        if working_set <= 0:
            raise ValueError(f"working_set must be > 0, got {working_set!r}")
        return float(np.interp(np.log(working_set), self._log_sizes, self.bandwidths))

    def lookup_many(self, working_sets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lookup` over an array of working-set sizes.

        Element-for-element identical to scalar lookups (same ``np.interp``
        evaluation), in one pass.
        """
        ws = np.asarray(working_sets, dtype=float)
        if np.any(ws <= 0):
            raise ValueError("working sets must all be > 0")
        return np.interp(np.log(ws), self._log_sizes, self.bandwidths)

    def lookup_many_log(self, log_working_sets: np.ndarray) -> np.ndarray:
        """:meth:`lookup_many` for callers holding pre-taken ``log(ws)``.

        The convolver's rate table prices one row's working sets against
        every machine and curve kind; taking the log once there turns each
        curve lookup into a single ``np.interp``.
        """
        return np.interp(log_working_sets, self._log_sizes, self.bandwidths)

    @property
    def main_memory_bandwidth(self) -> float:
        """The large-size asymptote (rightmost point) — the STREAM/GUPS analogue."""
        return float(self.bandwidths[-1])


@dataclass(frozen=True)
class MapsResult:
    """MEMBENCH MAPS output: the standard and ENHANCED curve families.

    Attributes
    ----------
    unit, random:
        Standard MAPS curves (independent accesses).
    unit_dep, random_dep:
        ENHANCED MAPS curves with induced loop-carried dependencies.
    """

    unit: MapsCurve
    random: MapsCurve
    unit_dep: MapsCurve
    random_dep: MapsCurve

    def curve(self, kind: str) -> MapsCurve:
        """Return a curve by name (``unit``/``random``/``unit_dep``/``random_dep``)."""
        try:
            return getattr(self, kind)
        except AttributeError:
            raise KeyError(f"unknown MAPS curve {kind!r}") from None


@dataclass(frozen=True)
class NetbenchResult:
    """NETBENCH output: fitted point-to-point model + all_reduce table.

    Attributes
    ----------
    latency:
        Fitted one-way small-message latency, seconds.
    bandwidth:
        Fitted asymptotic point-to-point bandwidth, B/s.
    pingpong_sizes, pingpong_seconds:
        The raw measurements the fit came from.
    allreduce_ranks, allreduce_seconds:
        8-byte all_reduce time at each measured rank count.
    """

    latency: float
    bandwidth: float
    pingpong_sizes: np.ndarray
    pingpong_seconds: np.ndarray
    allreduce_ranks: np.ndarray
    allreduce_seconds: np.ndarray

    def point_to_point(self, size_bytes: float) -> float:
        """Predicted one-way message time from the fitted model."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes!r}")
        return self.latency + size_bytes / self.bandwidth

    def allreduce_time(self, ranks: int, size_bytes: float = 8.0) -> float:
        """All_reduce time interpolated from measurements in log2(ranks).

        Payloads other than 8 bytes add tree-depth bandwidth sweeps priced
        with the fitted point-to-point model.
        """
        if ranks <= 1:
            return 0.0
        base = float(
            np.interp(
                np.log2(ranks),
                np.log2(self.allreduce_ranks),
                self.allreduce_seconds,
            )
        )
        if size_bytes > 8.0:
            depth = float(np.ceil(np.log2(ranks)))
            base += 2.0 * depth * (size_bytes - 8.0) / self.bandwidth
        return base

    @property
    def allreduce_rate(self) -> float:
        """1 / (8-byte all_reduce time at the largest measured rank count).

        The "all_reduce score" used by the balanced rating — higher is better.
        """
        return 1.0 / float(self.allreduce_seconds[-1])


@dataclass(frozen=True)
class MachineProbes:
    """Everything the probe suite learned about one machine.

    This bundle is the complete "R(X)" of Equation 1 and the rate source for
    the convolver's Metrics #4-#9.
    """

    machine: str
    hpl: HplResult
    stream: StreamResult
    gups: GupsResult
    maps: MapsResult
    netbench: NetbenchResult

    def simple_rate(self, name: str) -> float:
        """Rate for the simple metrics: ``hpl``, ``stream`` or ``gups``."""
        if name == "hpl":
            return self.hpl.rmax_flops
        if name == "stream":
            return self.stream.bandwidth
        if name == "gups":
            return self.gups.random_bandwidth
        raise KeyError(f"unknown simple rate {name!r} (hpl/stream/gups)")

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports."""
        return {
            "HPL Rmax (GF/s)": self.hpl.rmax_flops / 1e9,
            "STREAM triad (GB/s)": self.stream.triad / GB,
            "GUPS (GUP/s)": self.gups.gups,
            "NET latency (us)": self.netbench.latency * 1e6,
            "NET bandwidth (GB/s)": self.netbench.bandwidth / GB,
        }
