"""NETBENCH probe.

Measures interconnect latency and bandwidth with a ping-pong size sweep
(fitting the Hockney ``t = L + s/B`` model by least squares) and times
8-byte all_reduce operations over a rank-count sweep.  The probe runs on a
quiet machine, so it never observes the contention an application's full
communication phases suffer — a blind spot Metric #8 inherits.
"""

from __future__ import annotations

import numpy as np

from repro.machines.spec import MachineSpec
from repro.network.model import NetworkModel
from repro.probes.results import NetbenchResult
from repro.util.units import MIB

__all__ = ["run_netbench", "default_message_sizes", "default_rank_counts"]


def default_message_sizes(points: int = 16) -> np.ndarray:
    """Ping-pong message size grid: 8 B to 4 MiB, geometric."""
    return np.geomspace(8.0, 4.0 * MIB, int(points))


def default_rank_counts(max_ranks: int = 1024) -> np.ndarray:
    """All_reduce rank-count grid: powers of two up to ``max_ranks``."""
    if max_ranks < 2:
        raise ValueError(f"max_ranks must be >= 2, got {max_ranks}")
    return 2 ** np.arange(1, int(np.log2(max_ranks)) + 1)


def run_netbench(
    machine: MachineSpec,
    sizes: np.ndarray | None = None,
    rank_counts: np.ndarray | None = None,
) -> NetbenchResult:
    """Run NETBENCH on ``machine``.

    The latency/bandwidth fit is an ordinary least-squares line through the
    one-way times versus size; rank counts beyond the machine's processor
    count are skipped (you cannot probe ranks you do not have).
    """
    sizes = default_message_sizes() if sizes is None else np.asarray(sizes, dtype=float)
    ranks = (
        default_rank_counts()
        if rank_counts is None
        else np.asarray(rank_counts, dtype=int)
    )
    ranks = ranks[ranks <= machine.cpus]
    if ranks.size == 0:
        raise ValueError(f"{machine.name} has too few processors to run all_reduce")

    model = NetworkModel.of(machine)
    one_way = np.array([model.ping_pong(s) / 2.0 for s in sizes])

    # least-squares fit of one_way = latency + size / bandwidth
    design = np.column_stack([np.ones_like(sizes), sizes])
    (latency, inv_bw), *_ = np.linalg.lstsq(design, one_way, rcond=None)
    latency = float(max(latency, 1e-9))
    bandwidth = float(1.0 / max(inv_bw, 1e-18))

    allreduce = np.array([model.allreduce(int(r), 8.0) for r in ranks])
    return NetbenchResult(
        latency=latency,
        bandwidth=bandwidth,
        pingpong_sizes=sizes,
        pingpong_seconds=2.0 * one_way,
        allreduce_ranks=ranks.astype(float),
        allreduce_seconds=allreduce,
    )
