"""Run the full probe suite on a machine, with caching.

Probing a machine is cheap here but conceptually expensive (queue time on
ten production systems); the cache mirrors how the paper measured each
system once and reused the numbers for all 135 predictions per system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machines.spec import MachineSpec
from repro.probes.gups import run_gups
from repro.probes.hpl import run_hpl
from repro.probes.maps import run_maps
from repro.probes.netbench import run_netbench
from repro.probes.results import MachineProbes
from repro.probes.stream import run_stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tracing.store import TraceStore
    from repro.util.deadline import Deadline

__all__ = ["probe_machine", "clear_probe_cache"]

# Keyed by (name, content fingerprint): mutating a spec — even one reusing a
# production system's name — can never alias another spec's cached results.
_CACHE: dict[tuple[str, str], MachineProbes] = {}


#: Benchmark order of a full probe pass; each is a deadline checkpoint.
_BENCHMARKS = (
    ("hpl", run_hpl),
    ("stream", run_stream),
    ("gups", run_gups),
    ("maps", run_maps),
    ("netbench", run_netbench),
)


def probe_machine(
    machine: MachineSpec,
    *,
    use_cache: bool = True,
    store: "TraceStore | None" = None,
    deadline: "Deadline | None" = None,
) -> MachineProbes:
    """Run HPL, STREAM, GUPS, MAPS and NETBENCH on ``machine``.

    Results are cached by the spec's content fingerprint, so two different
    specs sharing a name get independent entries.  ``use_cache=False``
    bypasses the in-memory cache entirely; ``store`` additionally consults
    and fills a persistent on-disk cache.  ``deadline`` (a
    :class:`~repro.util.deadline.Deadline`) is checked before each of the
    five benchmarks, so a caller under time pressure abandons an
    uncached probe pass part-way instead of finishing it late — cache hits
    cost nothing and are never blocked by an expired budget.
    """
    key = (machine.name, machine.fingerprint())
    if use_cache and key in _CACHE:
        probes = _CACHE[key]
        # Write-through: a warm in-memory cache must still populate the
        # persistent store, or fresh processes would find it empty.
        if store is not None and not store.has_probes(machine):
            store.save_probes(machine, probes)
        return probes
    probes = store.load_probes(machine) if store is not None else None
    if probes is None:
        results = {}
        for name, runner in _BENCHMARKS:
            if deadline is not None:
                deadline.checkpoint("probe")
            results[name] = runner(machine)
        probes = MachineProbes(machine=machine.name, **results)
        if store is not None:
            store.save_probes(machine, probes)
    if use_cache:
        _CACHE[key] = probes
    return probes


def clear_probe_cache() -> None:
    """Drop all cached probe results."""
    _CACHE.clear()
