"""Run the full probe suite on a machine, with caching.

Probing a machine is cheap here but conceptually expensive (queue time on
ten production systems); the cache mirrors how the paper measured each
system once and reused the numbers for all 135 predictions per system.
"""

from __future__ import annotations

from repro.machines.spec import MachineSpec
from repro.probes.gups import run_gups
from repro.probes.hpl import run_hpl
from repro.probes.maps import run_maps
from repro.probes.netbench import run_netbench
from repro.probes.results import MachineProbes
from repro.probes.stream import run_stream

__all__ = ["probe_machine", "clear_probe_cache"]

_CACHE: dict[str, MachineProbes] = {}


def probe_machine(machine: MachineSpec, *, use_cache: bool = True) -> MachineProbes:
    """Run HPL, STREAM, GUPS, MAPS and NETBENCH on ``machine``.

    Results are cached by machine name; pass ``use_cache=False`` when
    probing a spec you are mutating between calls (e.g. in tests).
    """
    if use_cache and machine.name in _CACHE:
        return _CACHE[machine.name]
    probes = MachineProbes(
        machine=machine.name,
        hpl=run_hpl(machine),
        stream=run_stream(machine),
        gups=run_gups(machine),
        maps=run_maps(machine),
        netbench=run_netbench(machine),
    )
    if use_cache:
        _CACHE[machine.name] = probes
    return probes


def clear_probe_cache() -> None:
    """Drop all cached probe results."""
    _CACHE.clear()
