"""High-Performance LINPACK probe.

Models the per-processor behaviour of HPL's blocked LU factorisation: the
FP work runs at the processor's high-ILP efficiency while the blocked
update streams panel tiles through the outermost cache.  The reported Rmax
is therefore slightly below ``peak * ilp_efficiency``, with the gap set by
the machine's cache bandwidth — matching how real Rmax/Rpeak ratios vary
across architectures.
"""

from __future__ import annotations

import math

from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.probes.results import HplResult

__all__ = ["run_hpl"]


def _block_size(machine: MachineSpec) -> int:
    """LU block dimension: three b x b double tiles fit in the largest cache.

    A cache-less machine (main memory only) blocks for register/TLB reach
    instead; 64 is the classic HPL NB there.
    """
    if not machine.caches:
        return 64
    b = int(math.sqrt(machine.caches[-1].size_bytes / (3.0 * 8.0)))
    return max(32, min(b, 1024))


def run_hpl(machine: MachineSpec, n: int = 8192) -> HplResult:
    """Run the HPL model on ``machine`` with an ``n`` x ``n`` matrix.

    The LU solve performs ``2/3 n^3`` FP operations; with block size ``b``
    each matrix element is re-read roughly ``n/b`` times, giving
    ``~ 8 n^3 / b`` bytes of cache-level traffic.  FP and memory phases
    overlap according to the machine's overlap factor.
    """
    if n < 64:
        raise ValueError(f"n must be >= 64 for a meaningful solve, got {n}")
    proc = machine.processor
    hierarchy = MemoryHierarchy.of(machine)
    b = _block_size(machine)

    flops = (2.0 / 3.0) * float(n) ** 3
    traffic_bytes = 8.0 * float(n) ** 3 / b
    tile_bytes = 3.0 * b * b * 8.0

    t_fp = flops / (proc.peak_flops * proc.ilp_efficiency)
    pattern = AccessPattern(working_set=tile_bytes, stride=StrideClass.UNIT)
    t_mem = hierarchy.access_time(pattern, traffic_bytes)
    # Panel factorisation: the triangular O(n^2 b / 3) portion pipelines
    # poorly (half the DGEMM efficiency) and sits on the critical path.
    panel_flops = float(n) * float(n) * b / 3.0
    t_panel = panel_flops / (proc.peak_flops * 0.5 * proc.ilp_efficiency)

    hidden = machine.overlap_factor * min(t_fp, t_mem)
    seconds = t_fp + t_mem - hidden + t_panel
    return HplResult(
        rmax_flops=flops / seconds,
        rpeak_flops=proc.peak_flops,
        n=n,
        seconds=seconds,
    )
