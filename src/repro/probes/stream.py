"""STREAM probe.

Measures sustained unit-stride bandwidth from main memory with the four
canonical kernels.  Arrays are sized well past the outermost cache (the
STREAM rule: at least 4x), so the result is the hierarchy's main-memory
streaming bandwidth — the number Metric #2 ranks systems by and Metrics
#5/#6 price strided references with.
"""

from __future__ import annotations

from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.probes.results import StreamResult
from repro.util.units import MIB

__all__ = ["run_stream"]

#: bytes moved per loop iteration for each kernel (8-byte doubles)
_KERNEL_BYTES = {"copy": 16.0, "scale": 16.0, "add": 24.0, "triad": 24.0}
#: FP operations per iteration
_KERNEL_FLOPS = {"copy": 0.0, "scale": 1.0, "add": 1.0, "triad": 2.0}


def run_stream(machine: MachineSpec, min_bytes: float = 32 * MIB) -> StreamResult:
    """Run the STREAM model on ``machine``.

    The working set is ``max(4x outermost cache, min_bytes)`` split over the
    three arrays.  FP work overlaps with the streams (it never limits a
    STREAM run on these machines, but the model keeps the term for honesty).
    """
    largest_cache = max((lvl.size_bytes for lvl in machine.caches), default=0.0)
    array_bytes = max(4.0 * largest_cache, float(min_bytes))
    n = array_bytes / 8.0

    hierarchy = MemoryHierarchy.of(machine)
    pattern = AccessPattern(working_set=array_bytes, stride=StrideClass.UNIT)
    proc = machine.processor

    rates: dict[str, float] = {}
    for kernel, bytes_per_iter in _KERNEL_BYTES.items():
        total_bytes = bytes_per_iter * n
        t_mem = hierarchy.access_time(pattern, total_bytes)
        flops = _KERNEL_FLOPS[kernel] * n
        t_fp = flops / (proc.peak_flops * proc.ilp_efficiency) if flops else 0.0
        hidden = machine.overlap_factor * min(t_fp, t_mem)
        rates[kernel] = total_bytes / (t_fp + t_mem - hidden)

    return StreamResult(
        copy=rates["copy"],
        scale=rates["scale"],
        add=rates["add"],
        triad=rates["triad"],
        array_bytes=array_bytes,
    )
