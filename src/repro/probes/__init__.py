"""Synthetic benchmark probes (paper Section 3).

Each probe *runs* its access pattern against a machine model and reports
what the real benchmark reports:

* :mod:`repro.probes.hpl` — High-Performance LINPACK: per-processor Rmax
  from a blocked-LU compute/traffic model.
* :mod:`repro.probes.stream` — STREAM: main-memory unit-stride bandwidth
  (copy/scale/add/triad).
* :mod:`repro.probes.gups` — HPC Challenge RandomAccess: giga-updates per
  second over a memory-resident table.
* :mod:`repro.probes.maps` — MEMBENCH MAPS: bandwidth versus working-set
  size for unit and random stride; ENHANCED MAPS adds dependent (loop-
  carried) variants of both.
* :mod:`repro.probes.netbench` — NETBENCH: ping-pong latency/bandwidth fit
  plus an all_reduce timing table.

Probes see the machine only through the same analytic surface the
ground-truth executor uses, but at probe-shaped working sets and patterns —
the mismatch between probe shapes and application shapes is the subject of
the paper.  :func:`repro.probes.suite.probe_machine` runs everything once
per machine and caches the results.
"""

from repro.probes.results import (
    GupsResult,
    HplResult,
    MachineProbes,
    MapsCurve,
    MapsResult,
    NetbenchResult,
    StreamResult,
)
from repro.probes.hpl import run_hpl
from repro.probes.stream import run_stream
from repro.probes.gups import run_gups
from repro.probes.maps import run_maps
from repro.probes.netbench import run_netbench
from repro.probes.suite import clear_probe_cache, probe_machine

__all__ = [
    "HplResult",
    "StreamResult",
    "GupsResult",
    "MapsCurve",
    "MapsResult",
    "NetbenchResult",
    "MachineProbes",
    "run_hpl",
    "run_stream",
    "run_gups",
    "run_maps",
    "run_netbench",
    "probe_machine",
    "clear_probe_cache",
]
