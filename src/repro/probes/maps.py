"""MEMBENCH MAPS probe (standard + ENHANCED).

MAPS sweeps a working-set size grid and measures achieved bandwidth for
unit-stride and random access at each size — "equivalent to launching
multiple instances of both STREAM and GUPS at various sizes in order to
span the various levels of cache" (paper Section 3).  The rightmost points
of the unit and random curves therefore reproduce the STREAM and GUPS
scores.

ENHANCED MAPS additionally induces loop-carried data/control dependencies
in the inner loop, producing the ``unit_dep``/``random_dep`` curves Metric
#9 prices dependency-bound blocks with.
"""

from __future__ import annotations

import numpy as np

from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.probes.results import MapsCurve, MapsResult
from repro.util.units import KIB, MIB

__all__ = ["run_maps", "default_size_grid"]


def default_size_grid(
    smallest: float = 4 * KIB, largest: float = 512 * MIB, points: int = 25
) -> np.ndarray:
    """The geometric working-set grid MAPS sweeps (bytes)."""
    if smallest <= 0 or largest <= smallest:
        raise ValueError("need 0 < smallest < largest")
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    return np.geomspace(float(smallest), float(largest), int(points))


def _sweep(
    hierarchy: MemoryHierarchy,
    sizes: np.ndarray,
    stride: StrideClass,
    dependent: bool,
) -> MapsCurve:
    # One level-pricing pass for the whole grid; each point is bit-identical
    # to the former per-size effective_bandwidth call.
    shape = AccessPattern(
        working_set=float(sizes[0]), stride=stride, dependent=dependent
    )
    bws = hierarchy.effective_bandwidth_sweep(shape, sizes)
    return MapsCurve(sizes=sizes.copy(), bandwidths=bws)


def run_maps(machine: MachineSpec, sizes: np.ndarray | None = None) -> MapsResult:
    """Run MAPS and ENHANCED MAPS on ``machine`` over the ``sizes`` grid.

    A coarser/finer grid changes interpolation fidelity — one of the
    ablation knobs (the real probe also only samples discrete sizes).
    """
    grid = default_size_grid() if sizes is None else np.asarray(sizes, dtype=float)
    hierarchy = MemoryHierarchy.of(machine)
    return MapsResult(
        unit=_sweep(hierarchy, grid, StrideClass.UNIT, dependent=False),
        random=_sweep(hierarchy, grid, StrideClass.RANDOM, dependent=False),
        unit_dep=_sweep(hierarchy, grid, StrideClass.UNIT, dependent=True),
        random_dep=_sweep(hierarchy, grid, StrideClass.RANDOM, dependent=True),
    )
