"""GUPS (HPC Challenge RandomAccess) probe.

Updates random 8-byte words of a table far larger than the outermost cache.
Updates are independent (the benchmark permits up to 1024 outstanding), so
throughput is latency/MLP bound — the machine property Metric #3 ranks by
and Metrics #6-#9 price random references with.
"""

from __future__ import annotations

from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.probes.results import GupsResult
from repro.util.units import MIB

__all__ = ["run_gups"]


def run_gups(machine: MachineSpec, min_table_bytes: float = 64 * MIB) -> GupsResult:
    """Run the RandomAccess model on ``machine``.

    The table is ``max(8x outermost cache, min_table_bytes)``; each update
    is a read-modify-write, i.e. two 8-byte random references.
    """
    largest_cache = max((lvl.size_bytes for lvl in machine.caches), default=0.0)
    table_bytes = max(8.0 * largest_cache, float(min_table_bytes))

    hierarchy = MemoryHierarchy.of(machine)
    pattern = AccessPattern(
        working_set=table_bytes, stride=StrideClass.RANDOM, dependent=False
    )
    bandwidth = hierarchy.effective_bandwidth(pattern)
    updates_per_second = bandwidth / 16.0  # read + write per update
    return GupsResult(
        gups=updates_per_second / 1e9,
        random_bandwidth=bandwidth,
        table_bytes=table_bytes,
    )
