"""Plain-text rendering of study artifacts: tables, line and bar charts, CSV.

Keeps the whole reproduction runnable (and its figures inspectable) on a
terminal with no plotting stack installed.
"""

from repro.reporting.ascii_charts import bar_chart, line_chart
from repro.reporting.export import result_to_csv, tables_to_text

__all__ = ["line_chart", "bar_chart", "result_to_csv", "tables_to_text"]
