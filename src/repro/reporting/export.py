"""Export helpers: study results to CSV, table collections to text."""

from __future__ import annotations

from collections.abc import Iterable

from repro.study.runner import StudyResult
from repro.util.tables import Table

__all__ = ["result_to_csv", "tables_to_text"]


def result_to_csv(result: StudyResult) -> str:
    """Every prediction record as CSV (one row per record)."""
    lines = [
        "application,cpus,system,metric,actual_seconds,predicted_seconds,error_percent"
    ]
    for rec in result.records:
        lines.append(
            f"{rec.application},{rec.cpus},{rec.system},{rec.metric},"
            f"{rec.actual_seconds:.3f},{rec.predicted_seconds:.3f},"
            f"{rec.error_percent:.3f}"
        )
    return "\n".join(lines) + "\n"


def tables_to_text(tables: Iterable[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n".join(table.render() for table in tables)
