"""ASCII line and bar charts for terminal-friendly figures.

The paper's figures are a log-log bandwidth plot (Figure 1) and error bar
charts (Figures 2-7); these renderers reproduce them as monospace text so
every bench can print its figure.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Parameters
    ----------
    series:
        name -> (xs, ys); each series gets its own marker.
    log_x, log_y:
        Plot on log axes (Figure 1 is log-log).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 20 or height < 5:
        raise ValueError("chart must be at least 20x5")

    def tx(v: float) -> float:
        return math.log10(v) if log_x else v

    def ty(v: float) -> float:
        return math.log10(v) if log_y else v

    all_x = [tx(float(x)) for xs, _ in series.values() for x in xs]
    all_y = [ty(float(y)) for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((tx(float(x)) - x_lo) / x_span * (width - 1))
            row = int((ty(float(y)) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    if x_label:
        lines.append(" " + x_label)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 50,
    unit: str = "%",
    errors: Mapping[str, float] | None = None,
) -> str:
    """Render labelled values as horizontal ASCII bars (Figures 2-7).

    Parameters
    ----------
    values:
        label -> bar value.
    errors:
        Optional label -> half-width to annotate (standard deviation).
    """
    if not values:
        raise ValueError("need at least one bar")
    top = max(values.values())
    if top <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        n = int(round(value / top * width))
        bar = "#" * n
        suffix = f" {value:.0f}{unit}"
        if errors and label in errors:
            suffix += f" (+/-{errors[label]:.0f}{unit})"
        lines.append(f"{str(label).rjust(label_w)} |{bar}{suffix}")
    return "\n".join(lines) + "\n"
