"""Interconnect models.

:class:`~repro.network.model.NetworkModel` prices MPI point-to-point
messages and collectives on a machine's :class:`~repro.machines.spec.NetworkSpec`.
It is the single network surface shared by the ground-truth executor (which
additionally applies contention) and the NETBENCH probe (which measures the
uncontended pairwise behaviour) — the gap between the two is one of the
error sources Metric #8 cannot see.
"""

from repro.network.model import CollectiveKind, NetworkModel

__all__ = ["NetworkModel", "CollectiveKind"]
