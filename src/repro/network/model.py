"""Latency/bandwidth interconnect model with tree-based collectives.

Point-to-point messages cost ``latency + size/bandwidth`` (the classic
postal/Hockney model the paper's NETBENCH fits).  Collectives are priced as
log2(P)-depth trees scaled by the library's ``collective_efficiency``;
all-reduce pays both a reduce and a broadcast sweep of the payload.

The model is deliberately simpler than a packet-level simulator: the paper's
prediction framework itself uses only latency/bandwidth terms, so a richer
substrate would add unobservable detail.  Application-side contention is
applied *outside* this class by the executor so that the NETBENCH probe,
which measures a quiet machine, does not see it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.machines.spec import MachineSpec, NetworkSpec
from repro.util.validation import check_positive

__all__ = ["NetworkModel", "CollectiveKind"]


class CollectiveKind(enum.Enum):
    """MPI collective operations the application models use."""

    ALLREDUCE = "allreduce"
    BROADCAST = "broadcast"
    BARRIER = "barrier"
    ALLTOALL = "alltoall"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NetworkModel:
    """Price MPI operations on one interconnect.

    Parameters
    ----------
    spec:
        The machine's interconnect description.
    """

    spec: NetworkSpec

    @classmethod
    def of(cls, machine: MachineSpec) -> "NetworkModel":
        """Build the network model for ``machine``."""
        return cls(machine.network)

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def point_to_point(self, size_bytes: float) -> float:
        """One-way time (s) for a ``size_bytes`` message between two ranks."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes!r}")
        return self.spec.latency + size_bytes / self.spec.bandwidth

    def ping_pong(self, size_bytes: float) -> float:
        """Round-trip time (s) — what NETBENCH measures directly."""
        return 2.0 * self.point_to_point(size_bytes)

    def effective_bandwidth(self, size_bytes: float) -> float:
        """Achieved point-to-point bandwidth (B/s) at ``size_bytes``."""
        check_positive("size_bytes", size_bytes)
        return size_bytes / self.point_to_point(size_bytes)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _tree_depth(self, ranks: int) -> float:
        check_positive("ranks", ranks)
        if ranks == 1:
            return 0.0
        return math.ceil(math.log2(ranks)) / self.spec.collective_efficiency

    def collective(
        self, kind: CollectiveKind, ranks: int, size_bytes: float = 8.0
    ) -> float:
        """Time (s) for a ``kind`` collective over ``ranks`` ranks.

        ``size_bytes`` is the per-rank payload (ignored for barriers).
        """
        depth = self._tree_depth(ranks)
        if depth == 0.0:
            return 0.0
        if kind is CollectiveKind.BARRIER:
            return depth * self.spec.latency
        per_hop = self.spec.latency + size_bytes / self.spec.bandwidth
        if kind is CollectiveKind.ALLREDUCE:
            # reduce sweep + broadcast sweep of the same payload
            return 2.0 * depth * per_hop
        if kind is CollectiveKind.BROADCAST:
            return depth * per_hop
        if kind is CollectiveKind.ALLTOALL:
            # P-1 pairwise exchanges of the per-pair payload, pipelined
            exchanges = max(ranks - 1, 1)
            return exchanges * (self.spec.latency + size_bytes / self.spec.bandwidth)
        raise ValueError(f"unhandled collective kind {kind!r}")

    def allreduce(self, ranks: int, size_bytes: float = 8.0) -> float:
        """Convenience wrapper: all-reduce time, the probe NETBENCH reports."""
        return self.collective(CollectiveKind.ALLREDUCE, ranks, size_bytes)
