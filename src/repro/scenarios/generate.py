"""Seeded generator families: reproducible machine/application universes.

The paper's matrix is 5 applications x 10 target machines.  The ROADMAP
asks for a machine *space* — enough scenarios to ask distribution-level
questions ("how does metric #8's ranking fidelity degrade with noise?")
instead of eleven anecdotes.  This module grows that space from the
built-in archetypes, deterministically:

* every draw flows through :func:`repro.util.rng.stable_rng` keyed by
  ``(family, seed, role, index)``, so a universe is a pure function of
  ``(family, seed, cells)`` — two processes (or two CI runs) that name
  the same triple get content-identical specs, byte for byte;
* machines are *family-shaped* perturbations of the built-in systems —
  ``hierarchy`` deepens the cache hierarchy with an extra level,
  ``numa`` models multi-socket nodes (bigger cpu counts, a near-memory
  level, slower and more contended far memory), ``hotnode`` trades for
  high-FLOP/low-latency nodes, and ``mixed`` draws a style per machine;
* applications perturb or interpolate the five TI-05 archetypes:
  operation mixes and working-set laws jitter log-normally, stride
  histograms are re-normalised through
  :meth:`~repro.memory.patterns.StrideHistogram.normalised`, and MPI
  signatures scale count/size within validated ranges.

Every generated spec goes through the ordinary dataclass constructors, so
``__post_init__`` validation runs — a universe that builds is a universe
the engine can run.
"""

from __future__ import annotations

import dataclasses
import math

from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.machines.spec import MachineSpec, MemoryLevelSpec, NetworkSpec
from repro.memory.patterns import StrideHistogram
from repro.scenarios.builtin import builtin_applications, builtin_machines
from repro.scenarios.catalog import Universe
from repro.util.rng import stable_rng
from repro.util.validation import nearest_ids

__all__ = ["FAMILIES", "generate_universe"]

#: Generator families; ``mixed`` draws one of the others per machine.
FAMILIES: tuple[str, ...] = ("hierarchy", "numa", "hotnode", "mixed")

#: Generated machines are provisioned to at least this many processors so
#: no generated (application, cpus) row ever hits the paper's blank-cell
#: rule — making the universe's cell count an exact function of its shape.
_MIN_CPUS = 512

_RNG_NS = "scenarios.generate"


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


def _jitter(rng, value: float, sigma: float = 0.2) -> float:
    """Log-normal multiplicative jitter: positive, centred near ``value``."""
    return float(value * math.exp(rng.normal(0.0, sigma)))


def _perturb_level(rng, lvl: MemoryLevelSpec, size_factor: float) -> MemoryLevelSpec:
    size = lvl.size_bytes if math.isinf(lvl.size_bytes) else lvl.size_bytes * size_factor
    return dataclasses.replace(
        lvl,
        size_bytes=size,
        bandwidth=_jitter(rng, lvl.bandwidth, 0.15),
        latency=_jitter(rng, lvl.latency, 0.15),
        mlp=_clamp(_jitter(rng, lvl.mlp, 0.1), 1.0, 16.0),
        dependent_stream_factor=_clamp(
            _jitter(rng, lvl.dependent_stream_factor, 0.1), 0.05, 1.0
        ),
    )


def _mid_level(name: str, below: MemoryLevelSpec, above: MemoryLevelSpec, rng) -> MemoryLevelSpec:
    """A level geometrically between ``below`` and ``above`` (sizes ascend).

    ``above`` may be main memory (infinite size); the new level then
    extends the finite ladder instead of interpolating.
    """
    if math.isinf(above.size_bytes):
        size = below.size_bytes * float(rng.uniform(6.0, 12.0))
    else:
        size = math.sqrt(below.size_bytes * above.size_bytes)
    return MemoryLevelSpec(
        name=name,
        size_bytes=size,
        bandwidth=math.sqrt(below.bandwidth * above.bandwidth),
        latency=math.sqrt(below.latency * above.latency),
        line_bytes=above.line_bytes if not math.isinf(above.size_bytes) else below.line_bytes,
        mlp=(below.mlp + above.mlp) / 2.0,
        dependent_stream_factor=(
            below.dependent_stream_factor + above.dependent_stream_factor
        )
        / 2.0,
    )


def _machine(family: str, seed: int, index: int, style: str, archetype: MachineSpec) -> MachineSpec:
    rng = stable_rng(_RNG_NS, family, seed, "machine", index)
    proc = archetype.processor
    levels = list(archetype.memory_levels)
    net = archetype.network
    cpus = max(int(archetype.cpus), _MIN_CPUS)

    size_factor = float(rng.uniform(0.75, 1.5))
    levels = [_perturb_level(rng, lvl, size_factor) for lvl in levels]
    proc = dataclasses.replace(
        proc,
        clock_ghz=_jitter(rng, proc.clock_ghz, 0.1),
        ilp_efficiency=_clamp(_jitter(rng, proc.ilp_efficiency, 0.1), 0.05, 1.0),
        dependent_fp_efficiency=_clamp(
            _jitter(rng, proc.dependent_fp_efficiency, 0.1), 0.01, 1.0
        ),
    )
    net = dataclasses.replace(
        net,
        latency=_jitter(rng, net.latency, 0.15),
        bandwidth=_jitter(rng, net.bandwidth, 0.15),
        collective_efficiency=_clamp(
            _jitter(rng, net.collective_efficiency, 0.1), 0.1, 1.0
        ),
        contention_factor=max(1.0, _jitter(rng, net.contention_factor, 0.1)),
    )

    if style == "hierarchy":
        # Deepen the ladder: one extra level between the last finite cache
        # and main memory (think victim cache / HBM tier).
        depth = len(levels)
        levels.insert(
            depth - 1, _mid_level(f"L{depth}+", levels[depth - 2], levels[depth - 1], rng)
        )
    elif style == "numa":
        # Multi-socket node: more processors, a near-memory slab, and far
        # memory that is slower and more contended (remote-socket hops).
        cpus *= int(rng.integers(2, 5))
        mem = levels[-1]
        near = dataclasses.replace(
            _mid_level("NEAR", levels[-2], mem, rng),
            bandwidth=mem.bandwidth * float(rng.uniform(1.2, 1.8)),
            latency=mem.latency * float(rng.uniform(0.7, 0.95)),
        )
        levels.insert(len(levels) - 1, near)
        levels[-1] = dataclasses.replace(
            mem,
            latency=mem.latency * float(rng.uniform(1.4, 2.2)),
            bandwidth=mem.bandwidth * float(rng.uniform(0.6, 0.9)),
        )
        net = dataclasses.replace(
            net, contention_factor=net.contention_factor * float(rng.uniform(1.1, 1.4))
        )
    elif style == "hotnode":
        # High-FLOP, low-latency nodes: faster clocks, wider FP issue,
        # leaner network.
        proc = dataclasses.replace(
            proc,
            clock_ghz=proc.clock_ghz * float(rng.uniform(1.5, 2.5)),
            flops_per_cycle=proc.flops_per_cycle * float(rng.choice((1.0, 2.0))),
        )
        net = dataclasses.replace(
            net,
            latency=net.latency * float(rng.uniform(0.3, 0.6)),
            bandwidth=net.bandwidth * float(rng.uniform(1.5, 3.0)),
        )

    name = f"GEN-{family}-{seed}-M{index:03d}"
    return MachineSpec(
        name=name,
        architecture=f"GEN_{style}_{archetype.architecture}",
        vendor="synthetic",
        model=f"{style} variant of {archetype.model}",
        cpus=cpus,
        processor=proc,
        memory_levels=tuple(levels),
        network=net,
        overlap_factor=_clamp(_jitter(rng, archetype.overlap_factor, 0.1), 0.1, 1.0),
        noise_level=archetype.noise_level,
        description=f"generated ({family}, seed {seed}) from {archetype.name}",
    )


def _blend_hist(rng, a: StrideHistogram, b: StrideHistogram, t: float) -> StrideHistogram:
    unit = _clamp(_jitter(rng, (1 - t) * a.unit + t * b.unit + 1e-3, 0.1), 1e-3, 1.0)
    short = _clamp(_jitter(rng, (1 - t) * a.short + t * b.short + 1e-3, 0.1), 1e-3, 1.0)
    random = _clamp(_jitter(rng, (1 - t) * a.random + t * b.random + 1e-3, 0.1), 1e-3, 1.0)
    elems = a.short_stride_elems if rng.random() < 0.5 else b.short_stride_elems
    return StrideHistogram.normalised(
        unit=unit, short=short, random=random, short_stride_elems=elems
    )


def _blend_block(rng, a: BasicBlock, b: BasicBlock, t: float) -> BasicBlock:
    def mix(x: float, y: float) -> float:
        return (1 - t) * x + t * y

    return BasicBlock(
        name=a.name,
        fp_per_cell=_jitter(rng, max(mix(a.fp_per_cell, b.fp_per_cell), 1e-6), 0.25),
        loads_per_cell=_jitter(
            rng, max(mix(a.loads_per_cell, b.loads_per_cell), 1e-6), 0.25
        ),
        stores_per_cell=_jitter(
            rng, max(mix(a.stores_per_cell, b.stores_per_cell), 1e-6), 0.25
        ),
        stride=_blend_hist(rng, a.stride, b.stride, t),
        ws_scale=_jitter(rng, max(mix(a.ws_scale, b.ws_scale), 1e-6), 0.2),
        ws_exponent=_clamp(_jitter(rng, mix(a.ws_exponent, b.ws_exponent), 0.05), 0.0, 1.0),
        dependency_fraction=_clamp(
            _jitter(rng, mix(a.dependency_fraction, b.dependency_fraction) + 1e-3, 0.2),
            0.0,
            1.0,
        ),
        chase_fraction=_clamp(
            _jitter(rng, mix(a.chase_fraction, b.chase_fraction) + 1e-3, 0.2), 0.0, 1.0
        ),
        fp_ilp=_clamp(_jitter(rng, mix(a.fp_ilp, b.fp_ilp), 0.1), 0.05, 1.0),
    )


def _blend_comm(rng, ev: CommEvent) -> CommEvent:
    return dataclasses.replace(
        ev,
        count=_jitter(rng, ev.count, 0.25),
        size_scale=_jitter(rng, ev.size_scale, 0.25),
        size_exponent=_clamp(_jitter(rng, ev.size_exponent + 1e-3, 0.1), 0.0, 1.0),
        neighbors=int(_clamp(float(ev.neighbors + rng.integers(-2, 3)), 1, 26)),
    )


def _application(family: str, seed: int, index: int, archetypes) -> ApplicationModel:
    rng = stable_rng(_RNG_NS, family, seed, "application", index)
    a = archetypes[int(rng.integers(len(archetypes)))]
    b = archetypes[int(rng.integers(len(archetypes)))]
    # 30% of apps interpolate two archetypes; the rest perturb one.
    t = float(rng.uniform(0.2, 0.8)) if rng.random() < 0.3 else 0.0
    pad = {blk.name: blk for blk in b.blocks}
    blocks = tuple(
        _blend_block(rng, blk, pad.get(blk.name, blk), t) for blk in a.blocks
    )
    comms = tuple(_blend_comm(rng, ev) for ev in a.comms)
    return ApplicationModel(
        name=f"GEN-{family}-A{index:03d}",
        testcase=f"s{seed}",
        description=f"generated ({family}, seed {seed}) from {a.label}"
        + (f" x {b.label} (t={t:.2f})" if t else ""),
        cells=_jitter(rng, a.cells, 0.3),
        bytes_per_cell=_jitter(rng, a.bytes_per_cell, 0.2),
        timesteps=max(10, int(_jitter(rng, float(a.timesteps), 0.2))),
        cpu_counts=a.cpu_counts,
        blocks=blocks,
        comms=comms,
        serial_fraction=_clamp(_jitter(rng, a.serial_fraction + 1e-5, 0.2), 0.0, 0.05),
        imbalance=_clamp(_jitter(rng, a.imbalance + 1e-3, 0.2), 0.0, 0.5),
    )


def generate_universe(family: str, seed: int, cells: int) -> Universe:
    """The universe named by ``(family, seed, cells)`` — same triple, same
    bytes, in any process.

    ``cells`` is a floor: the generator picks the smallest near-square
    (applications x machines) grid whose non-blank cell count reaches it
    (every built-in archetype runs 3 processor counts, and generated
    machines always have enough processors, so the count is exact).
    """
    if family not in FAMILIES:
        from repro.core.errors import UnknownIdError

        raise UnknownIdError("family", family, FAMILIES, nearest_ids(family, FAMILIES))
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells!r}")
    seed = int(seed)

    app_archetypes = tuple(builtin_applications().values())
    machine_archetypes = tuple(builtin_machines().values())
    rows_per_app = len(app_archetypes[0].cpu_counts)  # 3 for every archetype

    n_machines = max(1, math.ceil(math.sqrt(cells / rows_per_app)))
    n_apps = max(1, math.ceil(cells / (rows_per_app * n_machines)))

    machines = []
    for i in range(n_machines):
        rng = stable_rng(_RNG_NS, family, seed, "style", i)
        style = (
            str(rng.choice(("hierarchy", "numa", "hotnode")))
            if family == "mixed"
            else family
        )
        archetype = machine_archetypes[int(rng.integers(len(machine_archetypes)))]
        machines.append(_machine(family, seed, i, style, archetype))
    applications = tuple(
        _application(family, seed, j, app_archetypes) for j in range(n_apps)
    )
    return Universe(
        ref=f"{family}:{seed}:{cells}",
        machines=tuple(machines),
        applications=applications,
    )
