"""Scenario catalog layer: machines and applications as data, not code.

Resolution (:mod:`repro.scenarios.catalog`) is the package's heart — one
process-wide :data:`~repro.scenarios.catalog.CATALOG` every consumer
(engine, predictor, study, serve, CLI) looks ids up through, with the
paper's eleven systems and five test cases frozen in as built-ins
(:mod:`repro.scenarios.builtin`) and at most one generated or TOML-loaded
universe mounted on top.  :mod:`repro.scenarios.spec_io` round-trips
specs through TOML, :mod:`repro.scenarios.generate` grows reproducible
universes from ``(family, seed, cells)``, and
:mod:`repro.scenarios.sensitivity` sweeps them to measure how metric
fidelity degrades with noise and calibration error.
"""

from repro.scenarios.catalog import (
    CATALOG,
    ScenarioCatalog,
    Universe,
    content_fingerprint,
    get_application,
    get_machine,
    list_applications,
    list_machines,
    mount_universe,
    resolve_universe,
    unmount_universe,
)
from repro.scenarios.builtin import BASE_SYSTEM, TARGET_SYSTEMS, builtin_digest

__all__ = [
    "BASE_SYSTEM",
    "CATALOG",
    "ScenarioCatalog",
    "TARGET_SYSTEMS",
    "Universe",
    "builtin_digest",
    "content_fingerprint",
    "get_application",
    "get_machine",
    "list_applications",
    "list_machines",
    "mount_universe",
    "resolve_universe",
    "unmount_universe",
]
