"""The frozen built-in catalog: the paper's own machines and applications.

This is the *only* module in the package allowed to import the legacy
builders (:mod:`repro.machines.registry`, :mod:`repro.apps.suite`) —
``scripts/check_layering.py`` enforces that.  It freezes their output into
plain data the catalog serves:

* machines are the registry's own spec objects (same instances, so
  :meth:`~repro.machines.spec.MachineSpec.fingerprint` digests — and every
  fingerprint-keyed executor/probe cache — are untouched by the refactor);
* applications are each suite factory called exactly once; the factories
  are pure, so the single instance is content-identical to every instance
  the old per-call path produced, and the frozen dataclass is safe to
  share.

``BUILTIN_DIGEST`` pins the whole built-in catalog's content; the test
suite asserts it never drifts, which is the machine-checkable form of the
refactor's "behavior-preserving" claim (the 1305-record golden study pin
is the end-to-end form).
"""

from __future__ import annotations

import hashlib

from repro.apps.model import ApplicationModel
from repro.apps.suite import APPLICATIONS
from repro.machines.registry import BASE_SYSTEM, MACHINES, TARGET_SYSTEMS
from repro.machines.spec import MachineSpec

__all__ = [
    "BASE_SYSTEM",
    "TARGET_SYSTEMS",
    "builtin_applications",
    "builtin_machines",
    "builtin_digest",
]


def builtin_machines() -> dict[str, MachineSpec]:
    """Name -> spec for the paper's eleven systems, registry order."""
    return dict(MACHINES)


def builtin_applications() -> dict[str, ApplicationModel]:
    """Label -> model for the five TI-05 test cases, study order."""
    return {label: factory() for label, factory in APPLICATIONS.items()}


def builtin_digest() -> str:
    """Content digest over every built-in entry, in catalog order."""
    from repro.scenarios.catalog import content_fingerprint

    h = hashlib.blake2b(digest_size=16)
    for machine in builtin_machines().values():
        h.update(machine.fingerprint().encode())
        h.update(b"\x1f")
    for app in builtin_applications().values():
        h.update(content_fingerprint(app).encode())
        h.update(b"\x1f")
    return h.hexdigest()
