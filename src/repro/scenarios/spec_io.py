"""Declarative serialization of scenario specs: dicts and TOML, both ways.

``repro-study catalog export`` writes the loaded catalog as a TOML
document; ``catalog gen --out`` persists a generated universe; and a
``--universe path.toml`` mounts one back.  The format is deliberately
literal — one ``[[machine]]``/``[[application]]`` array entry per spec,
nested tables mirroring the dataclass nesting — so a universe file is
diffable and hand-editable the way ``--metric-specs`` TOML already is
(see :func:`repro.core.registry.load_metric_specs`, the pattern this
follows, including its strict unknown-key policy).

Round-trip contract: ``loads_universe(dumps_universe(u))`` reproduces
every spec *content-identically* (equal ``repr``, hence equal
fingerprints).  Two details make that hold:

* floats are emitted with :func:`repr` (shortest exact form — Python
  floats round-trip through it losslessly; TOML accepts ``inf`` for the
  main-memory level size);
* numeric fields keep the exact type the spec holds — several built-in
  sizes are ints, and ``repr`` (hence the fingerprint) distinguishes
  ``32768`` from ``32768.0``, so float-typed fields are emitted and
  reloaded without coercion.

The writer is hand-rolled because the stdlib ships ``tomllib`` (read
only); no third-party TOML emitter is available in this environment.
"""

from __future__ import annotations

import json
import math
import os

from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind

__all__ = [
    "application_from_dict",
    "application_to_dict",
    "dumps_universe",
    "load_universe",
    "loads_universe",
    "machine_from_dict",
    "machine_to_dict",
]


# ---------------------------------------------------------------------------
# dict views
# ---------------------------------------------------------------------------
def machine_to_dict(spec: MachineSpec) -> dict:
    """Plain-data view of a machine spec (JSON- and TOML-serialisable)."""
    return {
        "name": spec.name,
        "architecture": spec.architecture,
        "vendor": spec.vendor,
        "model": spec.model,
        "cpus": int(spec.cpus),
        "overlap_factor": spec.overlap_factor,
        "noise_level": spec.noise_level,
        "description": spec.description,
        "processor": {
            "clock_ghz": spec.processor.clock_ghz,
            "flops_per_cycle": spec.processor.flops_per_cycle,
            "ilp_efficiency": spec.processor.ilp_efficiency,
            "dependent_fp_efficiency": spec.processor.dependent_fp_efficiency,
        },
        "memory_levels": [
            {
                "name": lvl.name,
                "size_bytes": lvl.size_bytes,
                "bandwidth": lvl.bandwidth,
                "latency": lvl.latency,
                "line_bytes": int(lvl.line_bytes),
                "mlp": lvl.mlp,
                "dependent_stream_factor": lvl.dependent_stream_factor,
            }
            for lvl in spec.memory_levels
        ],
        "network": {
            "name": spec.network.name,
            "latency": spec.network.latency,
            "bandwidth": spec.network.bandwidth,
            "collective_efficiency": spec.network.collective_efficiency,
            "contention_factor": spec.network.contention_factor,
        },
    }


def application_to_dict(app: ApplicationModel) -> dict:
    """Plain-data view of an application model."""
    return {
        "name": app.name,
        "testcase": app.testcase,
        "description": app.description,
        "cells": app.cells,
        "bytes_per_cell": app.bytes_per_cell,
        "timesteps": int(app.timesteps),
        "cpu_counts": [int(c) for c in app.cpu_counts],
        "serial_fraction": app.serial_fraction,
        "imbalance": app.imbalance,
        "blocks": [
            {
                "name": blk.name,
                "fp_per_cell": blk.fp_per_cell,
                "loads_per_cell": blk.loads_per_cell,
                "stores_per_cell": blk.stores_per_cell,
                "ws_scale": blk.ws_scale,
                "ws_exponent": blk.ws_exponent,
                "dependency_fraction": blk.dependency_fraction,
                "chase_fraction": blk.chase_fraction,
                "fp_ilp": blk.fp_ilp,
                "stride": {
                    "unit": blk.stride.unit,
                    "short": blk.stride.short,
                    "random": blk.stride.random,
                    "short_stride_elems": int(blk.stride.short_stride_elems),
                },
            }
            for blk in app.blocks
        ],
        "comms": [
            {
                "name": ev.name,
                "kind": ev.kind if isinstance(ev.kind, str) else ev.kind.value,
                "count": ev.count,
                "size_scale": ev.size_scale,
                "size_exponent": ev.size_exponent,
                "neighbors": int(ev.neighbors),
            }
            for ev in app.comms
        ],
    }


def _fields(entry: dict, where: str, *, strs=(), ints=(), floats=()) -> dict:
    """Coerce and validate one flat table; unknown keys are errors."""
    out: dict = {}
    allowed = set(strs) | set(ints) | set(floats)
    unknown = set(entry) - allowed
    if unknown:
        raise ValueError(f"unknown keys {sorted(unknown)} in {where}")
    for key in strs:
        if key in entry:
            if not isinstance(entry[key], str):
                raise ValueError(f"{where}.{key} must be a string")
            out[key] = entry[key]
    for key in ints:
        if key in entry:
            value = entry[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{where}.{key} must be a number")
            out[key] = int(value)
    for key in floats:
        if key in entry:
            value = entry[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{where}.{key} must be a number")
            out[key] = value  # int vs float is preserved: it is part of repr identity
    return out


def _require(entry: dict, keys: tuple[str, ...], where: str) -> None:
    missing = [key for key in keys if key not in entry]
    if missing:
        raise ValueError(f"missing keys {missing} in {where}")


def machine_from_dict(entry: dict, where: str = "machine") -> MachineSpec:
    """Rebuild a :class:`MachineSpec`; spec ``__post_init__`` re-validates."""
    if not isinstance(entry, dict):
        raise ValueError(f"{where} must be a table")
    entry = dict(entry)
    processor = entry.pop("processor", None)
    levels = entry.pop("memory_levels", None)
    network = entry.pop("network", None)
    _require(entry, ("name", "architecture", "vendor", "model", "cpus"), where)
    if not isinstance(processor, dict):
        raise ValueError(f"{where}.processor table is required")
    if not isinstance(levels, list) or not all(isinstance(l, dict) for l in levels):
        raise ValueError(f"{where}.memory_levels must be an array of tables")
    if not isinstance(network, dict):
        raise ValueError(f"{where}.network table is required")
    top = _fields(
        entry,
        where,
        strs=("name", "architecture", "vendor", "model", "description"),
        ints=("cpus",),
        floats=("overlap_factor", "noise_level"),
    )
    _require(processor, ("clock_ghz", "flops_per_cycle", "ilp_efficiency"), f"{where}.processor")
    proc = ProcessorSpec(
        **_fields(
            processor,
            f"{where}.processor",
            floats=(
                "clock_ghz",
                "flops_per_cycle",
                "ilp_efficiency",
                "dependent_fp_efficiency",
            ),
        )
    )
    lvls = []
    for i, lvl in enumerate(levels):
        lvl_where = f"{where}.memory_levels[{i}]"
        _require(lvl, ("name", "size_bytes", "bandwidth", "latency"), lvl_where)
        lvls.append(
            MemoryLevelSpec(
                **_fields(
                    lvl,
                    lvl_where,
                    strs=("name",),
                    ints=("line_bytes",),
                    floats=(
                        "size_bytes",
                        "bandwidth",
                        "latency",
                        "mlp",
                        "dependent_stream_factor",
                    ),
                )
            )
        )
    _require(network, ("name", "latency", "bandwidth"), f"{where}.network")
    net = NetworkSpec(
        **_fields(
            network,
            f"{where}.network",
            strs=("name",),
            floats=(
                "latency",
                "bandwidth",
                "collective_efficiency",
                "contention_factor",
            ),
        )
    )
    return MachineSpec(
        processor=proc, memory_levels=tuple(lvls), network=net, **top
    )


def application_from_dict(entry: dict, where: str = "application") -> ApplicationModel:
    """Rebuild an :class:`ApplicationModel`; model validation re-runs."""
    if not isinstance(entry, dict):
        raise ValueError(f"{where} must be a table")
    entry = dict(entry)
    blocks = entry.pop("blocks", None)
    comms = entry.pop("comms", [])
    cpu_counts = entry.pop("cpu_counts", None)
    _require(
        entry, ("name", "testcase", "description", "cells", "bytes_per_cell", "timesteps"), where
    )
    if not isinstance(blocks, list) or not blocks:
        raise ValueError(f"{where}.blocks must be a non-empty array of tables")
    if not isinstance(comms, list):
        raise ValueError(f"{where}.comms must be an array of tables")
    if not isinstance(cpu_counts, list) or not all(
        isinstance(c, int) and not isinstance(c, bool) for c in cpu_counts
    ):
        raise ValueError(f"{where}.cpu_counts must be an array of integers")
    top = _fields(
        entry,
        where,
        strs=("name", "testcase", "description"),
        ints=("timesteps",),
        floats=("cells", "bytes_per_cell", "serial_fraction", "imbalance"),
    )
    blks = []
    for i, blk in enumerate(blocks):
        blk_where = f"{where}.blocks[{i}]"
        if not isinstance(blk, dict):
            raise ValueError(f"{blk_where} must be a table")
        blk = dict(blk)
        stride = blk.pop("stride", None)
        if not isinstance(stride, dict):
            raise ValueError(f"{blk_where}.stride table is required")
        _require(
            blk, ("name", "fp_per_cell", "loads_per_cell", "stores_per_cell"), blk_where
        )
        _require(stride, ("unit", "short", "random"), f"{blk_where}.stride")
        hist = StrideHistogram(
            **_fields(
                stride,
                f"{blk_where}.stride",
                ints=("short_stride_elems",),
                floats=("unit", "short", "random"),
            )
        )
        blks.append(
            BasicBlock(
                stride=hist,
                **_fields(
                    blk,
                    blk_where,
                    strs=("name",),
                    floats=(
                        "fp_per_cell",
                        "loads_per_cell",
                        "stores_per_cell",
                        "ws_scale",
                        "ws_exponent",
                        "dependency_fraction",
                        "chase_fraction",
                        "fp_ilp",
                    ),
                ),
            )
        )
    events = []
    for i, ev in enumerate(comms):
        ev_where = f"{where}.comms[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{ev_where} must be a table")
        ev = dict(ev)
        kind = ev.pop("kind", None)
        if not isinstance(kind, str):
            raise ValueError(f"{ev_where}.kind must be a string")
        if kind != "p2p":
            try:
                kind = CollectiveKind(kind)
            except ValueError:
                valid = ["p2p"] + [k.value for k in CollectiveKind]
                raise ValueError(
                    f"{ev_where}.kind must be one of {valid}, got {kind!r}"
                ) from None
        _require(ev, ("name", "count", "size_scale"), ev_where)
        events.append(
            CommEvent(
                kind=kind,
                **_fields(
                    ev,
                    ev_where,
                    strs=("name",),
                    ints=("neighbors",),
                    floats=("count", "size_scale", "size_exponent"),
                ),
            )
        )
    return ApplicationModel(
        blocks=tuple(blks),
        comms=tuple(events),
        cpu_counts=tuple(cpu_counts),
        **top,
    )


# ---------------------------------------------------------------------------
# TOML writer / reader
# ---------------------------------------------------------------------------
def _toml_value(value) -> str:
    if isinstance(value, str):
        # JSON's quote/backslash/control escaping is valid TOML, but only
        # with ensure_ascii off: ASCII-mode escapes astral characters as
        # surrogate pairs, which TOML basic strings reject (strings are
        # Unicode scalar values).  Raw UTF-8 is valid in both formats.
        # Two deltas remain: TOML also forbids a literal DEL, and JSON
        # leaves it unescaped.
        return json.dumps(value, ensure_ascii=False).replace("\x7f", "\\u007f")
    if isinstance(value, bool):
        raise TypeError("no boolean fields exist in scenario specs")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return repr(value)  # shortest exact form; always floaty (has . or e)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TypeError(f"cannot serialise {value!r} to TOML")


def _emit_table(lines: list[str], header: str, table: dict) -> None:
    lines.append(header)
    for key, value in table.items():
        if isinstance(value, (dict, list)) and not key == "cpu_counts":
            continue  # nested tables are emitted by the caller
        lines.append(f"{key} = {_toml_value(value)}")
    lines.append("")


def dumps_universe(
    machines, applications, *, ref: str | None = None
) -> str:
    """TOML document for the given specs (catalog export / universe file)."""
    lines: list[str] = [
        "# repro scenario universe -- written by `repro-study catalog`;",
        "# load with `--universe <this file>` or `catalog show`.",
        "",
    ]
    if ref is not None:
        lines += ["[universe]", f"ref = {_toml_value(ref)}", ""]
    for spec in machines:
        entry = machine_to_dict(spec) if isinstance(spec, MachineSpec) else spec
        _emit_table(lines, "[[machine]]", entry)
        _emit_table(lines, "[machine.processor]", entry["processor"])
        for lvl in entry["memory_levels"]:
            _emit_table(lines, "[[machine.memory_levels]]", lvl)
        _emit_table(lines, "[machine.network]", entry["network"])
    for app in applications:
        entry = (
            application_to_dict(app) if isinstance(app, ApplicationModel) else app
        )
        _emit_table(lines, "[[application]]", entry)
        for blk in entry["blocks"]:
            _emit_table(lines, "[[application.blocks]]", blk)
            _emit_table(lines, "[application.blocks.stride]", blk["stride"])
        for ev in entry["comms"]:
            _emit_table(lines, "[[application.comms]]", ev)
    return "\n".join(lines)


def loads_universe(text: str, *, ref: str):
    """Parse a universe TOML document into a mountable Universe."""
    import tomllib

    from repro.scenarios.catalog import Universe

    try:
        doc = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"invalid universe TOML ({ref}): {exc}") from None
    unknown = set(doc) - {"universe", "machine", "application"}
    if unknown:
        raise ValueError(
            f"unknown top-level keys {sorted(unknown)} in universe file {ref}"
        )
    machines = tuple(
        machine_from_dict(entry, where=f"machine[{i}]")
        for i, entry in enumerate(doc.get("machine", []))
    )
    applications = tuple(
        application_from_dict(entry, where=f"application[{i}]")
        for i, entry in enumerate(doc.get("application", []))
    )
    return Universe(ref=ref, machines=machines, applications=applications)


def load_universe(path: str | os.PathLike):
    """Read a universe TOML file; the file path becomes the universe ref."""
    with open(path, "rb") as fh:
        text = fh.read().decode("utf-8")
    return loads_universe(text, ref=os.fspath(path))
