"""The scenario catalog: machines and applications as first-class data.

Historically the study's scenarios were *code*: :mod:`repro.machines.registry`
built eleven :class:`~repro.machines.spec.MachineSpec` objects into a
module-level dict and :mod:`repro.apps.suite` exposed five application
factories, and every consumer (engine, predictor, study runner, serve tier,
CLI) imported those dicts directly.  That made the 5 x 10 paper matrix a
closed world — there was no way to point the same pipeline at a different
machine/application universe without editing source.

This module is the refactor's pivot.  A :class:`ScenarioCatalog` holds the
frozen built-in entries (constructed exactly once from the original
builders, so content digests are byte-identical to the pre-refactor
objects) and can *mount* one generated or TOML-loaded
:class:`Universe` on top.  All id resolution in the package goes through
the process-wide :data:`CATALOG`:

* unknown ids raise :class:`~repro.core.errors.UnknownIdError` with
  nearest-match suggestions drawn from *whatever is loaded* — so serve-tier
  400 responses automatically list generated-universe ids when a universe
  is mounted;
* ``"label@k"`` replica suffixes resolve here with the exact semantics the
  suite used (parsed, never registered), so parallel study workers stay
  oblivious to ``--scale``;
* mounting is cheap, reversible and versioned; derived caches elsewhere key
  on machine fingerprints and application labels, so remounting a different
  universe can never alias a stale entry.

The catalog sits *below* :mod:`repro.core` (it is data, not policy): the
only core dependency is a lazy import of the error type, mirroring
:func:`repro.util.validation.check_known`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass

from repro.apps.model import ApplicationModel
from repro.machines.spec import MachineSpec
from repro.util.validation import nearest_ids

__all__ = [
    "CATALOG",
    "ScenarioCatalog",
    "Universe",
    "content_fingerprint",
    "get_application",
    "get_machine",
    "list_applications",
    "list_machines",
    "mount_universe",
    "resolve_universe",
    "unmount_universe",
]


def content_fingerprint(spec: object) -> str:
    """Stable content digest of a spec dataclass (blake2b-16 of ``repr``).

    The same idiom as :meth:`repro.machines.spec.MachineSpec.fingerprint`,
    usable for :class:`~repro.apps.model.ApplicationModel` too: frozen
    dataclasses of floats/strings/enums repr deterministically, so equal
    content means equal digest in any process.
    """
    return hashlib.blake2b(repr(spec).encode(), digest_size=16).hexdigest()


@dataclass(frozen=True)
class Universe:
    """An immutable set of scenario entries mountable on the catalog.

    Attributes
    ----------
    ref:
        The picklable string this universe was resolved from — either a
        generator spec ``"family:seed:cells"`` or a TOML file path.
        Workers in other processes re-resolve the same universe from this
        ref alone (see :func:`resolve_universe`).
    machines, applications:
        The entries; names/labels must not collide with each other.
        Collisions *with built-ins* are rejected at mount time instead, so
        a universe file is not coupled to the built-in id set.
    """

    ref: str
    machines: tuple[MachineSpec, ...]
    applications: tuple[ApplicationModel, ...]

    def __post_init__(self):
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine names in universe {self.ref!r}")
        labels = [a.label for a in self.applications]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate application labels in universe {self.ref!r}")
        for label in labels:
            if "@" in label:
                raise ValueError(
                    f"application label {label!r} in universe {self.ref!r} "
                    "contains '@' (reserved for replica suffixes)"
                )

    def digest(self) -> str:
        """Order-sensitive digest over every entry's content fingerprint."""
        h = hashlib.blake2b(digest_size=16)
        for machine in self.machines:
            h.update(machine.fingerprint().encode())
            h.update(b"\x1f")
        for app in self.applications:
            h.update(content_fingerprint(app).encode())
            h.update(b"\x1f")
        return h.hexdigest()

    def cell_count(self) -> int:
        """Non-blank study cells this universe spans (paper blank-cell rule)."""
        return sum(
            1
            for app in self.applications
            for cpus in app.cpu_counts
            for machine in self.machines
            if cpus <= machine.cpus
        )


class ScenarioCatalog:
    """Built-in scenario entries plus at most one mounted :class:`Universe`.

    Lookup order is universe-first for ids the universe defines, built-ins
    otherwise; id listings are built-ins first (preserving the registry
    order every table and error message already depends on) followed by
    universe entries.  ``version`` increments on every mount/unmount so
    derived caches can invalidate, mirroring
    :class:`repro.core.registry.MetricRegistry`.
    """

    def __init__(
        self,
        machines: dict[str, MachineSpec],
        applications: dict[str, ApplicationModel],
    ):
        self._builtin_machines = dict(machines)
        self._builtin_applications = dict(applications)
        self._universe: Universe | None = None
        self._machines = dict(self._builtin_machines)
        self._applications = dict(self._builtin_applications)
        self._lock = threading.RLock()
        self.version = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def machine(self, name: str) -> MachineSpec:
        """The machine called ``name``, built-in or mounted.

        Raises :class:`~repro.core.errors.UnknownIdError` (a
        :class:`KeyError` subclass, so pre-catalog handlers keep working)
        with nearest-match suggestions over everything loaded.
        """
        try:
            return self._machines[name]
        except KeyError:
            from repro.core.errors import UnknownIdError

            known = self.machine_ids()
            raise UnknownIdError(
                "machine", name, known, nearest_ids(name, known)
            ) from None

    def application(self, label: str) -> ApplicationModel:
        """The application labelled ``label``, with ``"label@k"`` replicas.

        Replica semantics are exactly the suite's: the suffix is parsed
        here, never registered, so replicas resolve in any process; a bad
        suffix on a known base raises a plain :class:`KeyError` (the serve
        boundary maps it to a 400 ``BadParameter``).
        """
        base_label, sep, suffix = label.partition("@")
        try:
            app = self._applications[base_label]
        except KeyError:
            from repro.core.errors import UnknownIdError

            known = self.application_ids()
            raise UnknownIdError(
                "application", label, known, nearest_ids(label, known)
            ) from None
        if not sep:
            return app
        if not suffix.isdigit() or int(suffix) <= 0:
            raise KeyError(
                f"bad replica suffix in {label!r}; expected '<label>@<positive int>'"
            )
        # label round-trips: app.label == f"{base_label}@{suffix}"
        return dataclasses.replace(app, testcase=f"{app.testcase}@{suffix}")

    def machine_ids(self) -> tuple[str, ...]:
        """Every loaded machine name, built-ins first, then universe order."""
        return tuple(self._machines)

    def application_ids(self) -> tuple[str, ...]:
        """Every loaded application label, built-ins first, then universe."""
        return tuple(self._applications)

    def machine_map(self) -> dict[str, MachineSpec]:
        """Fresh name -> spec dict of everything loaded (iteration helper)."""
        return dict(self._machines)

    def application_map(self) -> dict[str, ApplicationModel]:
        """Fresh label -> model dict of everything loaded."""
        return dict(self._applications)

    def has_machine(self, name: str) -> bool:
        return name in self._machines

    def has_application(self, label: str) -> bool:
        """True when ``label`` (sans any replica suffix) is loaded."""
        return label.partition("@")[0] in self._applications

    # ------------------------------------------------------------------
    # universes
    # ------------------------------------------------------------------
    @property
    def universe(self) -> Universe | None:
        return self._universe

    @property
    def universe_ref(self) -> str | None:
        """Picklable ref of the mounted universe (ships to worker processes)."""
        return None if self._universe is None else self._universe.ref

    def mount(self, universe: Universe) -> None:
        """Mount ``universe`` on top of the built-ins (replacing any other).

        Validates every entry against built-in ids before touching state —
        a failed mount leaves the catalog exactly as it was.
        """
        for machine in universe.machines:
            if machine.name in self._builtin_machines:
                raise ValueError(
                    f"universe machine {machine.name!r} collides with a "
                    "built-in system"
                )
        for app in universe.applications:
            if app.label in self._builtin_applications:
                raise ValueError(
                    f"universe application {app.label!r} collides with a "
                    "built-in test case"
                )
        with self._lock:
            self._universe = universe
            self._machines = dict(self._builtin_machines)
            self._machines.update({m.name: m for m in universe.machines})
            self._applications = dict(self._builtin_applications)
            self._applications.update({a.label: a for a in universe.applications})
            self.version += 1

    def unmount(self) -> None:
        """Drop any mounted universe, restoring the built-in-only view."""
        with self._lock:
            if self._universe is None:
                return
            self._universe = None
            self._machines = dict(self._builtin_machines)
            self._applications = dict(self._builtin_applications)
            self.version += 1


def _builtin_catalog() -> ScenarioCatalog:
    from repro.scenarios.builtin import builtin_applications, builtin_machines

    return ScenarioCatalog(builtin_machines(), builtin_applications())


#: The process-wide catalog every consumer resolves ids through.
CATALOG = _builtin_catalog()


def get_machine(name: str) -> MachineSpec:
    """Resolve ``name`` through the process catalog (universe-aware)."""
    return CATALOG.machine(name)


def get_application(label: str) -> ApplicationModel:
    """Resolve ``label`` (including replicas) through the process catalog."""
    return CATALOG.application(label)


def list_machines() -> list[str]:
    """Names of every loaded system, built-in registry order first."""
    return list(CATALOG.machine_ids())


def list_applications() -> list[str]:
    """Labels of every loaded test case, built-in study order first."""
    return list(CATALOG.application_ids())


def resolve_universe(ref: str) -> Universe:
    """Build the :class:`Universe` a ref names, without mounting it.

    Two ref shapes, disambiguated by syntax:

    * ``"family:seed:cells"`` — a generator spec; resolved by
      :func:`repro.scenarios.generate.generate_universe`, so the same ref
      reproduces the same universe in any process.
    * anything else — a path to a TOML catalog file written by
      ``repro-study catalog export``/``gen`` (see
      :mod:`repro.scenarios.spec_io`).
    """
    parts = ref.split(":")
    if len(parts) == 3 and parts[1].lstrip("-").isdigit() and parts[2].isdigit():
        from repro.scenarios.generate import generate_universe

        return generate_universe(parts[0], int(parts[1]), int(parts[2]))
    from repro.scenarios.spec_io import load_universe

    return load_universe(ref)


def mount_universe(ref: str) -> Universe:
    """Resolve ``ref`` and mount it on the process catalog; returns it.

    Mounting the ref that is already mounted is a no-op (keeps pool
    initializers and fleet workers idempotent).
    """
    if CATALOG.universe_ref == ref:
        return CATALOG.universe  # type: ignore[return-value]
    universe = resolve_universe(ref)
    CATALOG.mount(universe)
    return universe


def unmount_universe() -> None:
    """Drop any mounted universe from the process catalog."""
    CATALOG.unmount()
