"""Sensitivity study: how metric fidelity degrades on generated universes.

Cornebize & Legrand's critique of performance-model studies is that a
ranking claim means little without knowing how it behaves under run-to-run
variability and model-calibration error.  The paper's own matrix cannot
answer that — 50 cells, one noise draw.  This module can, because the
scenario catalog makes universes data:

* **noise sweep** — the same generated universe is re-mounted with every
  machine's ``noise_level`` set to each amplitude; the ground-truth
  executor's (deterministic, machine-keyed) noise then perturbs observed
  times while predictions are unchanged, and per-metric rank correlation
  (Kendall tau / Spearman rho per (application, cpus) case, averaged) and
  the signed-error distribution are recorded per amplitude.  Amplitude 0
  is the *fidelity ceiling* — what the metric could do on a noiseless
  machine — and is what CI gates on for metrics #8/#9.
* **calibration sweep** — machine specs (clock, per-level bandwidth and
  latency, network latency/bandwidth) are perturbed log-normally with
  relative magnitude ``epsilon``, modelling mis-measured machine specs.
  Predictions run on the *perturbed* specs, observed times come from the
  *true* (epsilon = 0) run, joined per cell — exactly the situation of a
  practitioner predicting with an imperfect spec sheet.

Every sweep point runs through the ordinary tensorized
:func:`repro.study.runner.run_study` path (the layering lint whitelists
this one study import), so sensitivity results exercise precisely the
code the paper tables use.  Derived universes are written as TOML files
and mounted by path, which makes them shippable to parallel study workers
via the catalog's universe ref.
"""

from __future__ import annotations

import dataclasses
import math
import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import rank_agreement
from repro.core.registry import REGISTRY
from repro.scenarios.builtin import BASE_SYSTEM
from repro.scenarios.catalog import CATALOG, Universe, mount_universe
from repro.scenarios.generate import FAMILIES, generate_universe
from repro.scenarios.spec_io import dumps_universe
from repro.util.rng import stable_rng
from repro.util.validation import check_fraction, check_positive, nearest_ids

__all__ = [
    "MetricSensitivity",
    "SensitivityConfig",
    "SensitivityResult",
    "SweepPoint",
    "run_sensitivity",
]

_RNG_NS = "scenarios.sensitivity"


@dataclass(frozen=True)
class SensitivityConfig:
    """Parameters of a sensitivity sweep over one generated universe."""

    family: str = "mixed"
    seed: int = 0
    cells: int = 1000
    noise_amplitudes: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)
    calibration_errors: tuple[float, ...] = (0.0, 0.05, 0.1)
    metrics: tuple[int, ...] = field(
        default_factory=lambda: tuple(spec.number for spec in REGISTRY.table3())
    )
    sample_size: int = 64

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            from repro.core.errors import UnknownIdError

            raise UnknownIdError(
                "family", self.family, FAMILIES, nearest_ids(self.family, FAMILIES)
            )
        check_positive("cells", self.cells)
        if self.sample_size < 64:  # the tracer's own floor
            raise ValueError(f"sample_size must be >= 64, got {self.sample_size}")
        for amp in self.noise_amplitudes:
            check_fraction("noise amplitude", amp)
        for eps in self.calibration_errors:
            check_fraction("calibration error", eps)
        if not self.metrics:
            raise ValueError("metrics must not be empty")
        object.__setattr__(
            self,
            "metrics",
            tuple(REGISTRY.spec(key).number for key in self.metrics),
        )


@dataclass(frozen=True)
class MetricSensitivity:
    """One metric's fidelity at one sweep point."""

    metric: int
    kendall_tau: float
    spearman_rho: float
    cases: int
    mean_signed_error: float
    mean_abs_error: float
    p5_signed_error: float
    p95_signed_error: float

    def to_dict(self) -> dict:
        return {
            "kendall_tau": self.kendall_tau,
            "spearman_rho": self.spearman_rho,
            "cases": self.cases,
            "mean_signed_error": self.mean_signed_error,
            "mean_abs_error": self.mean_abs_error,
            "p5_signed_error": self.p5_signed_error,
            "p95_signed_error": self.p95_signed_error,
        }


@dataclass(frozen=True)
class SweepPoint:
    """Per-metric fidelity at one amplitude / calibration error."""

    amplitude: float
    metrics: dict[int, MetricSensitivity]

    def to_dict(self) -> dict:
        return {
            "amplitude": self.amplitude,
            "metrics": {str(m): s.to_dict() for m, s in sorted(self.metrics.items())},
        }


@dataclass(frozen=True)
class SensitivityResult:
    """Everything a sweep learned, JSON-ready via :meth:`to_dict`."""

    config: SensitivityConfig
    universe_digest: str
    machine_count: int
    application_count: int
    cell_count: int
    noise: tuple[SweepPoint, ...]
    calibration: tuple[SweepPoint, ...]

    def to_dict(self) -> dict:
        return {
            "family": self.config.family,
            "seed": self.config.seed,
            "cells_requested": self.config.cells,
            "cell_count": self.cell_count,
            "machine_count": self.machine_count,
            "application_count": self.application_count,
            "sample_size": self.config.sample_size,
            "universe_digest": self.universe_digest,
            "noise": [point.to_dict() for point in self.noise],
            "calibration": [point.to_dict() for point in self.calibration],
        }

    def zero_noise(self) -> SweepPoint:
        """The amplitude-0 noise point (the fidelity ceiling CI gates on)."""
        for point in self.noise:
            if point.amplitude == 0.0:
                return point
        raise ValueError("sweep has no zero-noise point")


def _with_noise(universe: Universe, amplitude: float, ref: str) -> Universe:
    machines = tuple(
        dataclasses.replace(m, noise_level=amplitude) for m in universe.machines
    )
    return Universe(ref=ref, machines=machines, applications=universe.applications)


def _with_calibration_error(universe: Universe, eps: float, ref: str) -> Universe:
    """Perturb every machine's *measured* parameters by relative ``eps``.

    Only rate/latency parameters move — hierarchy sizes stay, so level
    ordering (and the working-set resident level) cannot flip from a
    calibration wobble, mirroring how specs are actually mis-measured
    (bandwidths and latencies, not capacities).  Noise is forced off: the
    sweep isolates calibration error.
    """
    machines = []
    for m in universe.machines:
        rng = stable_rng(_RNG_NS, "calibration", repr(eps), m.name)

        def wobble(value: float) -> float:
            return float(value * math.exp(rng.normal(0.0, eps)))

        proc = dataclasses.replace(m.processor, clock_ghz=wobble(m.processor.clock_ghz))
        levels = tuple(
            dataclasses.replace(
                lvl, bandwidth=wobble(lvl.bandwidth), latency=wobble(lvl.latency)
            )
            for lvl in m.memory_levels
        )
        net = dataclasses.replace(
            m.network,
            latency=wobble(m.network.latency),
            bandwidth=wobble(m.network.bandwidth),
        )
        machines.append(
            dataclasses.replace(
                m,
                processor=proc,
                memory_levels=levels,
                network=net,
                noise_level=0.0,
            )
        )
    return Universe(ref=ref, machines=tuple(machines), applications=universe.applications)


def _metric_stats(metric: int, cells: dict) -> MetricSensitivity:
    """Fidelity stats from ``{(app, cpus): {system: (predicted, actual)}}``."""
    taus, rhos, errors = [], [], []
    for by_system in cells.values():
        if len(by_system) >= 2:
            agreement = rank_agreement(
                {s: pair[0] for s, pair in by_system.items()},
                {s: pair[1] for s, pair in by_system.items()},
            )
            taus.append(agreement["kendall_tau"])
            rhos.append(agreement["spearman_rho"])
        for predicted, actual in by_system.values():
            errors.append((predicted - actual) / actual * 100.0)
    err = np.asarray(errors, dtype=np.float64)
    return MetricSensitivity(
        metric=metric,
        kendall_tau=float(np.mean(taus)) if taus else float("nan"),
        spearman_rho=float(np.mean(rhos)) if rhos else float("nan"),
        cases=len(taus),
        mean_signed_error=float(err.mean()),
        mean_abs_error=float(np.abs(err).mean()),
        p5_signed_error=float(np.percentile(err, 5.0)),
        p95_signed_error=float(np.percentile(err, 95.0)),
    )


def _sweep_point(amplitude: float, metrics, records, actuals=None) -> SweepPoint:
    """Stats per metric; ``actuals`` (cell -> observed) overrides the run's
    own observed times for the calibration join."""
    stats: dict[int, MetricSensitivity] = {}
    for metric in metrics:
        cells: dict = {}
        for rec in records:
            if rec.metric != metric:
                continue
            actual = rec.actual_seconds
            if actuals is not None:
                key = (rec.application, rec.cpus, rec.system)
                if key not in actuals:
                    continue
                actual = actuals[key]
            cells.setdefault((rec.application, rec.cpus), {})[rec.system] = (
                rec.predicted_seconds,
                actual,
            )
        stats[metric] = _metric_stats(metric, cells)
    return SweepPoint(amplitude=amplitude, metrics=stats)


def run_sensitivity(
    config: SensitivityConfig | None = None,
    *,
    workers: int = 1,
    store=None,
    universe_dir: str | os.PathLike | None = None,
) -> SensitivityResult:
    """Run the full noise + calibration sweep for ``config``.

    Each sweep point mounts a derived universe (written as TOML under
    ``universe_dir``, a temp dir by default) and runs one study over it;
    the catalog's previously mounted universe, if any, is restored on
    exit.  ``workers``/``store`` pass straight to
    :func:`repro.study.runner.run_study`.
    """
    from repro.study.runner import StudyConfig, run_study

    config = config or SensitivityConfig()
    base = generate_universe(config.family, config.seed, config.cells)
    previous_ref = CATALOG.universe_ref

    def study_for(universe_path: str):
        mount_universe(universe_path)
        cfg = StudyConfig(
            applications=tuple(a.label for a in base.applications),
            systems=tuple(m.name for m in base.machines),
            base_system=BASE_SYSTEM,
            metrics=config.metrics,
            sample_size=config.sample_size,
            noise=True,
        )
        return run_study(cfg, workers=workers, store=store)

    def write(tmp: str, name: str, universe: Universe) -> str:
        path = os.path.join(tmp, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                dumps_universe(universe.machines, universe.applications, ref=universe.ref)
            )
        return path

    noise_points: list[SweepPoint] = []
    calibration_points: list[SweepPoint] = []
    try:
        with tempfile.TemporaryDirectory(dir=universe_dir) as tmp:
            true_records = None
            for i, amplitude in enumerate(config.noise_amplitudes):
                derived = _with_noise(base, amplitude, f"{base.ref}#noise{i}")
                result = study_for(write(tmp, f"noise-{i}.toml", derived))
                noise_points.append(
                    _sweep_point(amplitude, config.metrics, result.records)
                )
                if amplitude == 0.0:
                    true_records = result.records
            if config.calibration_errors and true_records is None:
                derived = _with_noise(base, 0.0, f"{base.ref}#true")
                true_records = study_for(write(tmp, "true.toml", derived)).records
            actuals = (
                {
                    (r.application, r.cpus, r.system): r.actual_seconds
                    for r in true_records
                    if r.metric == config.metrics[0]
                }
                if true_records is not None
                else {}
            )
            for i, eps in enumerate(config.calibration_errors):
                if eps == 0.0:
                    calibration_points.append(
                        _sweep_point(0.0, config.metrics, true_records)
                    )
                    continue
                derived = _with_calibration_error(base, eps, f"{base.ref}#cal{i}")
                result = study_for(write(tmp, f"cal-{i}.toml", derived))
                calibration_points.append(
                    _sweep_point(eps, config.metrics, result.records, actuals)
                )
    finally:
        if previous_ref is not None:
            mount_universe(previous_ref)
        else:
            CATALOG.unmount()

    return SensitivityResult(
        config=config,
        universe_digest=base.digest(),
        machine_count=len(base.machines),
        application_count=len(base.applications),
        cell_count=base.cell_count(),
        noise=noise_points,
        calibration=calibration_points,
    )
