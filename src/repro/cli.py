"""Command-line front end: ``repro-study`` / ``python -m repro``.

Subcommands regenerate the paper's artifacts on the terminal:

* ``table4`` — overall error per metric (Table 4 / Figure 2);
* ``table5`` — per-system error (Table 5);
* ``figures`` — per-application error assessments (Figures 3-7);
* ``figure1`` — unit-stride MAPS curves (Figure 1);
* ``appendix`` — observed times-to-solution (Tables 6-10);
* ``probes`` — probe summary per system;
* ``cost`` — the Section 3 effort-vs-accuracy table;
* ``all`` — everything above;
* ``csv`` — raw prediction records as CSV on stdout;
* ``serve`` — the resilient online prediction service (HTTP);
* ``store migrate`` / ``store info`` — cache-directory maintenance
  (rewrite legacy JSON entries as binary; print format/entry counts);
* ``events tail`` / ``events verify`` / ``events rebuild`` — event-log
  audit: print the newest events, fsck every writer stream, or
  reconstruct the projection views from the raw log alone;
* ``sim run`` / ``sim replay`` / ``sim shrink`` — the deterministic
  simulation harness: sweep seeded chaos episodes under virtual time,
  replay the committed regression corpus, or delta-debug a failing
  episode down to a minimal reproducer;
* ``catalog list`` / ``catalog show`` / ``catalog export`` / ``catalog
  gen`` — scenario-catalog tooling: list every loaded machine and
  application, print one spec as TOML, snapshot the loaded catalog, or
  grow a seeded universe file from ``(family, seed, cells)``;
* ``sensitivity`` — sweep a generated universe through the study under
  increasing run-to-run noise and spec-calibration error, reporting
  per-metric rank correlation and signed-error degradation.

``--universe`` mounts a generated or TOML-loaded universe before any id
resolves, for every artifact above.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.core.errors import EventLogCorruptError, ReproError, StudyAbortedError
from repro.core.options import CacheModel, Mode
from repro.core.registry import REGISTRY
from repro.probes.suite import probe_machine
from repro.scenarios import CATALOG
from repro.reporting.ascii_charts import bar_chart, line_chart
from repro.reporting.export import result_to_csv
from repro.study.runner import StudyResult, run_study, shutdown_pool
from repro.study import tables as T
from repro.util.faults import FaultPlan

__all__ = ["main"]


def _print_table4(result: StudyResult) -> None:
    print(T.table4_overall(result).render())
    bars = {
        f"#{m}": err for m, (err, _std) in T.figure2_series(result).items()
    }
    stds = {f"#{m}": std for m, (_err, std) in T.figure2_series(result).items()}
    print(bar_chart(bars, title="Figure 2. Average absolute error by metric", errors=stds))


def _print_table5(result: StudyResult) -> None:
    print(T.table5_systems(result, include_paper=True).render())


def _print_figures(result: StudyResult) -> None:
    for app in result.config.applications:
        print(T.figures3_7_series(result, app).render())


def _print_figure1() -> None:
    series = {
        name: (sizes, bws / 1e9)
        for name, (sizes, bws) in T.figure1_series().items()
    }
    print(
        line_chart(
            series,
            title="Figure 1. Unit-stride memory bandwidth vs working-set size",
            x_label="working set (bytes, log)",
            y_label="GB/s (log)",
        )
    )


def _print_appendix(result: StudyResult) -> None:
    for app in result.config.applications:
        print(T.appendix_runtimes(result, app).render())


def _print_cost(result: StudyResult) -> None:
    from repro.study.cost import metric_costs

    print("Effort vs accuracy (Section 3)")
    print("==============================")
    print(f"{'metric':>6s} {'needs':>9s} {'base hours':>11s} {'avg |err| %':>12s}")
    for row in metric_costs(result):
        print(
            f"#{row.metric:5d} {row.requirement:>9s} "
            f"{row.acquisition_hours:11.0f} {row.mean_abs_error:12.1f}"
        )
    print()


def _print_probes() -> None:
    for name, machine in CATALOG.machine_map().items():
        summary = probe_machine(machine).summary()
        row = "  ".join(f"{k}={v:.3g}" for k, v in summary.items())
        print(f"{name:15s} {row}")


def _serve(args, faults) -> int:
    """Boot the resilient prediction service and block until interrupted.

    ``--workers 1`` (the default) runs the proven single-process
    threading server; ``--workers N`` for N >= 2 boots the sharded
    multi-process fleet behind the asyncio front end.
    """
    from repro.serve.httpd import make_server
    from repro.serve.service import DEFAULT_DEADLINE_SECONDS, PredictionService

    if args.workers >= 2:
        return _serve_fleet(args, faults)
    service = PredictionService(
        mode=args.mode,
        noise=not args.no_noise,
        cache_model=args.cache_model,
        store=args.cache_dir,
        events=args.events_dir,
        default_deadline=(
            DEFAULT_DEADLINE_SECONDS if args.deadline is None else args.deadline
        ),
        faults=faults,
    )
    server = make_server(args.host, args.port, service)
    host, port = server.server_address[:2]
    print(
        f"repro-study: serving predictions on http://{host}:{port} "
        f"(deadline {service.default_deadline:g}s; routes: /predict, "
        f"/healthz, /readyz, /events/stats, /catalog; Ctrl-C stops, "
        f"SIGTERM drains)",
        file=sys.stderr,
    )
    _install_sigterm(
        # shutdown() must come from another thread: called from the
        # handler (main thread, inside serve_forever) it deadlocks.
        lambda: threading.Thread(
            target=server.shutdown, name="serve-sigterm", daemon=True
        ).start()
    )
    try:
        server.serve_forever()
    finally:
        # server_close() joins the in-flight handler threads
        # (block_on_close), so the drain below sees every request that
        # was admitted before the stop signal.
        server.server_close()
        service.drain()
    return 0


def _install_sigterm(handler) -> None:
    """Install a no-argument SIGTERM callback (no-op off the main thread)."""
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: handler())
    except ValueError:  # tests drive serve from a non-main thread
        pass


def _serve_fleet(args, faults) -> int:
    """Boot the sharded worker fleet and block until interrupted."""
    from repro.serve.frontend import FleetServer
    from repro.serve.service import DEFAULT_DEADLINE_SECONDS

    deadline = DEFAULT_DEADLINE_SECONDS if args.deadline is None else args.deadline
    server = FleetServer(
        args.workers,
        host=args.host,
        port=args.port,
        default_deadline=deadline,
        service_config={
            "mode": args.mode,
            "noise": not args.no_noise,
            "cache_model": args.cache_model,
            "store": args.cache_dir,
            "events_dir": args.events_dir,
            "default_deadline": deadline,
            # FaultPlan crosses the fork/spawn boundary as its spec
            # string; the universe crosses as its catalog ref.
            "faults": args.inject_faults,
            "universe": args.universe,
        },
    )
    host, port = server.start()
    print(
        f"repro-study: serving predictions on http://{host}:{port} "
        f"({args.workers} workers; deadline {deadline:g}s; routes: /predict, "
        f"/predict/batch, /healthz, /readyz, /events/stats, /catalog; "
        f"Ctrl-C stops, SIGTERM drains)",
        file=sys.stderr,
    )
    stop = threading.Event()
    _install_sigterm(stop.set)
    try:
        # SIGTERM sets the event; Ctrl-C raises out of the wait.  Either
        # way server.stop() EOFs every worker socket, and the workers
        # drain their admitted frames and flush their stores/logs before
        # exiting (see fleet._worker_main).
        stop.wait()
    finally:
        server.stop()
    return 0


def _store_action(action: str, cache_dir: str) -> int:
    """Cache-directory maintenance: ``store migrate`` / ``store info``."""
    from repro.tracing.store import TraceStore

    store = TraceStore(cache_dir)
    if action == "migrate":
        report = store.migrate()
        print(
            f"repro-study: store migrate {cache_dir}: "
            f"{report['migrated']} entr{'y' if report['migrated'] == 1 else 'ies'} "
            f"converted to binary, {report['cleaned']} stale legacy file(s) "
            f"removed, {report['invalidated']} corrupt entr"
            f"{'y' if report['invalidated'] == 1 else 'ies'} invalidated"
        )
        return 0
    stats = store.stats()
    print(f"cache directory : {stats['root']}")
    print(f"binary format   : v{stats['binary_format_version']}")
    print(f"payload schema  : v{stats['payload_schema_version']}")
    for kind in ("traces", "probes"):
        row = stats[kind]
        print(
            f"{kind:15s} : {row['binary']} binary, "
            f"{row['legacy_json']} legacy JSON, {row['bytes']} bytes"
        )
    return 0


def _events_action(action: str, events_dir: str, limit: int) -> int:
    """Event-log audit: ``events tail`` / ``events verify`` / ``events rebuild``."""
    from repro.events import ProjectionEngine, replay_dir, verify_dir

    if action == "tail":
        rows = [
            {"writer": writer, "seq": seq, **event.to_doc()}
            for writer, seq, event in replay_dir(events_dir)
        ]
        for row in rows[-limit:] if limit > 0 else rows:
            print(json.dumps(row, sort_keys=True))
        return 0
    if action == "verify":
        report = verify_dir(events_dir)
        for stream in report["streams"]:
            status = "ok" if stream["ok"] else "DAMAGED"
            print(
                f"{stream['writer']:12s} {status:8s} "
                f"{stream['frames']} frame(s), "
                f"{len(stream['segments'])} segment(s), "
                f"{stream['duplicates']} duplicate(s), "
                f"last seq {stream['last_seq']}"
            )
            for error in stream["errors"]:
                print(f"  - {error}")
        print(
            f"repro-study: events verify {report['root']}: "
            f"{report['frames']} frame(s) across "
            f"{len(report['streams'])} stream(s)"
        )
        if not report["ok"]:
            raise EventLogCorruptError(
                f"event log {events_dir} has damaged stream(s); "
                "see the fsck report above"
            )
        return 0
    # rebuild: reconstruct every projection view from the raw log alone.
    views = ProjectionEngine.rebuild(events_dir).views()
    print(json.dumps(views, indent=2, sort_keys=True))
    return 0


def _catalog_action(args, parser) -> int:
    """Catalog tooling: ``catalog list|show|export|gen``."""
    from pathlib import Path

    from repro.scenarios.spec_io import dumps_universe

    def emit(text: str, what: str) -> None:
        if args.out is not None:
            Path(args.out).write_text(text)
            print(f"repro-study: catalog {args.action}: {what} written to {args.out}")
        else:
            sys.stdout.write(text)

    if args.action == "gen":
        if args.family is None:
            parser.error("catalog gen: --family is required")
        from repro.scenarios.generate import generate_universe

        universe = generate_universe(args.family, args.seed, args.cells)
        emit(
            dumps_universe(
                universe.machines, universe.applications, ref=universe.ref
            ),
            f"universe {universe.ref}",
        )
        print(
            f"repro-study: catalog gen {universe.ref}: "
            f"{len(universe.machines)} machine(s) x "
            f"{len(universe.applications)} application(s) = "
            f"{universe.cell_count()} cell(s), digest {universe.digest()}",
            file=sys.stderr,
        )
        return 0

    if args.action == "show":
        if args.id is None:
            parser.error("catalog show: --id is required")
        if CATALOG.has_machine(args.id):
            emit(dumps_universe((CATALOG.machine(args.id),), ()), args.id)
        elif CATALOG.has_application(args.id):
            emit(dumps_universe((), (CATALOG.application(args.id),)), args.id)
        else:
            from repro.core.errors import UnknownIdError
            from repro.util.validation import nearest_ids

            known = CATALOG.machine_ids() + CATALOG.application_ids()
            raise UnknownIdError(
                "catalog entry", args.id, known, nearest_ids(args.id, known)
            )
        return 0

    if args.action == "export":
        # A snapshot of everything loaded (built-ins plus any mounted
        # universe).  No [universe] ref: the snapshot collides with the
        # built-ins by construction, so it documents rather than mounts.
        emit(
            dumps_universe(
                tuple(CATALOG.machine_map().values()),
                tuple(CATALOG.application_map().values()),
            ),
            f"{len(CATALOG.machine_ids())} machine(s), "
            f"{len(CATALOG.application_ids())} application(s)",
        )
        return 0

    # list: one line per loaded entry, built-ins first (catalog order).
    universe = CATALOG.universe
    if universe is not None:
        print(f"universe {universe.ref} mounted (digest {universe.digest()})")
    from_universe_machines = (
        {m.name for m in universe.machines} if universe is not None else set()
    )
    from_universe_apps = (
        {a.label for a in universe.applications} if universe is not None else set()
    )
    print(f"machines ({len(CATALOG.machine_ids())}):")
    for name, spec in CATALOG.machine_map().items():
        source = "universe" if name in from_universe_machines else "builtin"
        print(
            f"  {name:24s} {source:8s} {spec.cpus:6d} cpus  "
            f"{spec.description or spec.architecture}"
        )
    print(f"applications ({len(CATALOG.application_ids())}):")
    for label, app in CATALOG.application_map().items():
        source = "universe" if label in from_universe_apps else "builtin"
        counts = ",".join(str(c) for c in app.cpu_counts)
        print(f"  {label:24s} {source:8s} cpus [{counts}]  {app.description}")
    return 0


def _parse_float_list(parser, flag: str, text: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        parser.error(f"{flag}: expected comma-separated numbers, got {text!r}")
    if not values:
        parser.error(f"{flag}: expected at least one value")
    return values


def _sensitivity_action(args, parser, metrics) -> int:
    """Sensitivity sweep: ``repro-study sensitivity``."""
    from pathlib import Path

    from repro.scenarios.sensitivity import SensitivityConfig, run_sensitivity

    overrides: dict = {}
    if metrics is not None:
        overrides["metrics"] = metrics
    if args.amplitudes is not None:
        overrides["noise_amplitudes"] = _parse_float_list(
            parser, "--amplitudes", args.amplitudes
        )
    if args.calibration_errors is not None:
        overrides["calibration_errors"] = _parse_float_list(
            parser, "--calibration-errors", args.calibration_errors
        )
    if args.sample_size is not None:
        overrides["sample_size"] = args.sample_size
    config = SensitivityConfig(
        family=args.family or "mixed",
        seed=args.seed,
        cells=args.cells,
        **overrides,
    )
    result = run_sensitivity(config, workers=args.workers, store=args.cache_dir)
    print(
        f"Sensitivity sweep over {config.family}:{config.seed}:{config.cells} "
        f"({result.machine_count} machine(s) x {result.application_count} "
        f"application(s) = {result.cell_count} cell(s), "
        f"digest {result.universe_digest})"
    )
    for title, points in (
        ("noise amplitude", result.noise),
        ("calibration error", result.calibration),
    ):
        if not points:
            continue
        print()
        print(f"{title} sweep")
        print(
            f"{title.split()[-1]:>10s} {'metric':>7s} {'tau':>7s} "
            f"{'rho':>7s} {'mean |err| %':>13s} {'p5..p95 signed %':>20s}"
        )
        for point in points:
            for number, stats in sorted(point.metrics.items()):
                span = (
                    f"{stats.p5_signed_error:.1f} .. {stats.p95_signed_error:.1f}"
                )
                print(
                    f"{point.amplitude:10.3f} {'#' + str(number):>7s} "
                    f"{stats.kendall_tau:7.3f} {stats.spearman_rho:7.3f} "
                    f"{stats.mean_abs_error:13.1f} {span:>20s}"
                )
    if args.report is not None:
        out = Path(args.report)
        report = json.loads(out.read_text()) if out.exists() else {}
        report["sensitivity"] = result.to_dict()
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(
            f"repro-study: sensitivity report merged into {out} "
            "(sensitivity section)"
        )
    return 0


def _sim_load_corpus_doc(path) -> tuple:
    """Parse one corpus/schedule file into (schedule, canary, expected).

    A file is either a bare :class:`~repro.sim.schedule.Schedule` doc
    (replay must hold every invariant) or a wrapper ``{"schedule": ...,
    "canary": ..., "expect_violation": ...}`` — the form ``sim shrink
    --out`` writes — which replays under the named canary and must fail
    with exactly the recorded invariant signature.
    """
    import json as _json

    from repro.sim import Schedule

    doc = _json.loads(path.read_text())
    if "schedule" in doc:
        schedule = Schedule.from_doc(doc["schedule"])
        return schedule, doc.get("canary"), doc.get("expect_violation")
    return Schedule.from_doc(doc), None, None


def _sim_action(args, parser) -> int:
    """Simulation harness: ``sim run`` / ``sim replay`` / ``sim shrink``."""
    import time
    from pathlib import Path

    from repro.sim import SCENARIO_NAMES, run_episode, shrink_episode

    if args.action == "shrink":
        if args.scenario in (None, "all"):
            parser.error("sim shrink: --scenario must name one scenario")
        minimal, signature = shrink_episode(
            args.scenario, args.seed, canary=args.canary
        )
        doc = {"schedule": minimal.to_doc(), "expect_violation": signature}
        if args.canary is not None:
            doc["canary"] = args.canary
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if args.out is not None:
            Path(args.out).write_text(text)
            print(
                f"repro-study: sim shrink: {len(minimal.events)} event(s) "
                f"reproduce [{signature}]; written to {args.out}"
            )
        else:
            sys.stdout.write(text)
        return 0

    if args.action == "replay":
        if args.schedule is not None:
            paths = [Path(args.schedule)]
        else:
            paths = sorted(Path(args.corpus).glob("*.json"))
            if not paths:
                parser.error(f"sim replay: no *.json schedules under {args.corpus}")
        bad = 0
        for path in paths:
            schedule, canary, expected = _sim_load_corpus_doc(path)
            result = run_episode(
                schedule.scenario, schedule.seed, schedule=schedule, canary=canary
            )
            if expected is not None:
                ok = any(v["invariant"] == expected for v in result.violations)
                detail = f"expects [{expected}]"
            else:
                ok = result.ok
                detail = "expects clean"
            bad += not ok
            print(
                f"{path.name:40s} {'ok' if ok else 'FAIL':4s} "
                f"{schedule.scenario} seed={schedule.seed} "
                f"{len(schedule.events)} event(s), {detail}, "
                f"digest {result.digest}"
            )
            if not ok:
                for violation in result.violations:
                    print(f"  - {violation['message']}", file=sys.stderr)
        print(
            f"repro-study: sim replay: {len(paths) - bad}/{len(paths)} "
            f"schedule(s) behaved as committed"
        )
        return 1 if bad else 0

    # sim run: sweep seeded episodes, optionally merge a benchmark section.
    scenarios = (
        SCENARIO_NAMES
        if args.scenario in (None, "all")
        else (args.scenario,)
    )
    start = time.perf_counter()
    episodes = 0
    virtual_total = 0.0
    bad = 0
    for scenario in scenarios:
        scenario_bad = 0
        for seed in range(args.seed, args.seed + args.episodes):
            result = run_episode(scenario, seed, canary=args.canary)
            episodes += 1
            virtual_total += result.virtual_seconds
            if not result.ok:
                bad += 1
                scenario_bad += 1
                for violation in result.violations:
                    print(
                        f"repro-study: sim: {scenario} seed={seed}: "
                        f"{violation['message']}",
                        file=sys.stderr,
                    )
        print(
            f"{scenario:15s} {args.episodes} episode(s), "
            f"{scenario_bad} violation(s)"
        )
    elapsed = time.perf_counter() - start
    print(
        f"repro-study: sim run: {episodes} episode(s) covering "
        f"{virtual_total:,.0f} virtual second(s) in {elapsed:.2f}s wall; "
        f"{bad} with violations"
    )
    if args.report is not None:
        out = Path(args.report)
        report = json.loads(out.read_text()) if out.exists() else {}
        report["sim"] = {
            "episodes": episodes,
            "scenarios": list(scenarios),
            "violations": bad,
            "virtual_seconds": round(virtual_total, 3),
            "wall_seconds": round(elapsed, 3),
            "episodes_per_second": round(episodes / elapsed, 1) if elapsed else None,
        }
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"repro-study: sim report merged into {out} (sim section)")
    return 1 if bad else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-study``.

    Failures never escape as raw tracebacks: each
    :class:`~repro.core.errors.ReproError` class maps to a one-line
    message on stderr and its own nonzero exit code, and Ctrl-C shuts the
    persistent worker pool down and exits 130.
    """
    try:
        return _run(argv)
    except ReproError as exc:
        print(f"repro-study: error: {exc}", file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        shutdown_pool()  # workers must not outlive an interrupted study
        print("repro-study: interrupted", file=sys.stderr)
        return 130


def _run(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce the SC'05 simple-metrics prediction study.",
    )
    parser.add_argument(
        "artifact",
        choices=[
            "table4",
            "table5",
            "figures",
            "figure1",
            "appendix",
            "probes",
            "cost",
            "csv",
            "all",
            "serve",
            "store",
            "events",
            "sim",
            "catalog",
            "sensitivity",
        ],
        nargs="?",
        default="table4",
        help="which paper artifact to regenerate (default: table4), "
        "'store' for cache maintenance, 'events' for event-log audit, "
        "'sim' for the deterministic simulation harness, 'catalog' for "
        "scenario-catalog tooling, or 'sensitivity' for the generated-"
        "universe noise/calibration sweep",
    )
    parser.add_argument(
        "action",
        choices=[
            "migrate",
            "info",
            "tail",
            "verify",
            "rebuild",
            "run",
            "replay",
            "shrink",
            "list",
            "show",
            "export",
            "gen",
        ],
        nargs="?",
        default=None,
        help="with 'store': 'migrate' rewrites a JSON-era cache dir to the "
        "binary format in place (atomic, resumable); 'info' prints format "
        "version, entry counts and bytes (requires --cache-dir); with "
        "'events': 'tail' prints the newest events as JSON lines, 'verify' "
        "fscks every writer stream (exit 13 on damage), 'rebuild' "
        "reconstructs the projection views from the raw log (requires "
        "--events-dir); with 'sim': 'run' sweeps seeded chaos episodes "
        "under virtual time (exit 1 on any invariant violation), 'replay' "
        "re-executes the committed corpus under --corpus, 'shrink' "
        "delta-debugs a failing episode to a minimal reproducer; with "
        "'catalog': 'list' prints every loaded machine/application id, "
        "'show' prints one spec as TOML (--id), 'export' snapshots the "
        "loaded catalog as TOML, 'gen' grows a seeded universe file "
        "(--family/--seed/--cells)",
    )
    parser.add_argument(
        "--no-noise",
        action="store_true",
        help="disable run-to-run noise in the ground-truth executor",
    )
    parser.add_argument(
        "--mode",
        choices=list(Mode.values()),
        default="relative",
        help="convolver anchoring (default: relative, as the paper)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="LIST",
        help="comma-separated registry metrics to study — numbers (9), "
        "names (conv+maps, balanced) or a mix (default: Table 3's 1-9); "
        "unknown metrics exit with the nearest valid names",
    )
    parser.add_argument(
        "--metric-specs",
        default=None,
        metavar="FILE",
        help="register user metrics (#10+) from a TOML spec file before "
        "running (see README 'Custom metrics' for the format)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes to fan the study matrix over (default: 1, serial; "
        "output is byte-identical either way); with 'serve', N >= 2 boots "
        "the sharded multi-process fleet front end",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist traces and probe results under DIR so repeated "
        "invocations skip the non-recurring costs",
    )
    parser.add_argument(
        "--cache-model",
        choices=list(CacheModel.values()),
        default="analytic",
        help="cache accounting back-end when tracing: 'analytic' prices all "
        "levels from one reuse-distance profile (default), 'exact' replays "
        "streams through the set-associative simulator",
    )
    parser.add_argument(
        "--events-dir",
        default=None,
        metavar="DIR",
        help="append an auditable event log under DIR ('serve': one writer "
        "stream per process) and read it back with the 'events' artifact",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="events tail: print the newest N events (default: 20; 0 for "
        "the full log)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="journal completed study chunks to FILE; a killed run resumes "
        "from the last completed chunk (byte-identical output) on the next "
        "invocation with the same FILE",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per study chunk before it is quarantined into the "
        "result's failures list (default: 2)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline; overrunning chunks are retried like "
        "crashes (default: none)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: address to bind the prediction service to "
        "(default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8077,
        metavar="N",
        help="serve: TCP port (default: 8077; 0 picks a free port)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve: default per-request deadline when the request does "
        "not name one (default: 1.0)",
    )
    parser.add_argument(
        "--scenario",
        choices=["all", "serve-recovery", "study-resume", "coalesce"],
        default="all",
        help="sim: which scenario to run/shrink (default: all; shrink "
        "requires a single scenario)",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        default=25,
        metavar="N",
        help="sim run: seeded episodes per scenario (default: 25)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="sim: first episode seed (run sweeps N..N+episodes-1; "
        "shrink targets exactly N); catalog gen / sensitivity: the "
        "universe generator seed (default: 0)",
    )
    parser.add_argument(
        "--canary",
        default=None,
        metavar="NAME",
        help="sim: re-introduce a known-fixed bug at the driver boundary "
        "('silent-degrade') so the harness can prove it still detects it",
    )
    parser.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="sim replay: replay this one schedule JSON file instead of "
        "the corpus directory",
    )
    parser.add_argument(
        "--corpus",
        default="tests/corpus",
        metavar="DIR",
        help="sim replay: directory of committed schedule reproducers "
        "(default: tests/corpus)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="sim shrink / catalog show|export|gen: write the output "
        "(reproducer JSON, spec or universe TOML) to FILE instead of "
        "stdout",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="sim run / sensitivity: merge a 'sim' or 'sensitivity' "
        "section into the benchmark report JSON at FILE",
    )
    parser.add_argument(
        "--universe",
        default=None,
        metavar="REF",
        help="mount a scenario universe before any id resolves: "
        "'family:seed:cells' (e.g. 'mixed:42:1000') regenerates a seeded "
        "universe, anything else is read as a universe TOML path; study "
        "artifacts then sweep the universe's own matrix, and 'serve' "
        "accepts (and suggests) its ids",
    )
    parser.add_argument(
        "--id",
        default=None,
        metavar="NAME",
        help="catalog show: the machine name or application label to "
        "print as TOML",
    )
    parser.add_argument(
        "--family",
        default=None,
        metavar="NAME",
        help="catalog gen / sensitivity: generator family — hierarchy, "
        "numa, hotnode or mixed (sensitivity default: mixed)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=1000,
        metavar="N",
        help="catalog gen / sensitivity: minimum prediction-cell count "
        "of the generated universe (default: 1000)",
    )
    parser.add_argument(
        "--amplitudes",
        default=None,
        metavar="LIST",
        help="sensitivity: comma-separated noise amplitudes to sweep "
        "(default: 0,0.02,0.05,0.1,0.2)",
    )
    parser.add_argument(
        "--calibration-errors",
        default=None,
        metavar="LIST",
        help="sensitivity: comma-separated machine-spec calibration "
        "error magnitudes to sweep (default: 0,0.05,0.1)",
    )
    parser.add_argument(
        "--sample-size",
        type=int,
        default=None,
        metavar="N",
        help="sensitivity: per-cell tensor sample size (default and "
        "minimum: 64; larger is finer and slower)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic chaos harness: comma-separated key=value spec "
        "(crash=RATE, stall=RATE, corrupt=RATE, seed=N, stall_seconds=S, "
        "hard=0/1, abort_after=N), e.g. 'crash=0.25,stall=0.1,seed=7'",
    )
    args = parser.parse_args(argv)

    faults = None
    if args.inject_faults is not None:
        try:
            faults = FaultPlan.parse(args.inject_faults)
        except ValueError as exc:
            parser.error(str(exc))

    if args.metric_specs is not None:
        try:
            loaded = REGISTRY.load_toml(args.metric_specs)
        except OSError as exc:
            parser.error(f"--metric-specs: {exc}")
        except ValueError as exc:
            parser.error(str(exc))
        print(
            "repro-study: registered "
            + ", ".join(f"#{s.number} {s.name}" for s in loaded),
            file=sys.stderr,
        )

    # Resolved here (not in StudyConfig) so an unknown metric exits with
    # UnknownIdError's code and nearest-match hint, like the HTTP 400.
    metrics = None
    if args.metrics is not None:
        metrics = tuple(
            REGISTRY.spec(key.strip()).number
            for key in args.metrics.split(",")
            if key.strip()
        )
        if not metrics:
            parser.error("--metrics: expected at least one metric")

    universe = None
    if args.universe is not None:
        from repro.scenarios import mount_universe

        try:
            universe = mount_universe(args.universe)
        except OSError as exc:
            parser.error(f"--universe: {exc}")
        except ValueError as exc:
            parser.error(f"--universe: {exc}")

    if args.artifact == "store":
        if args.action not in ("migrate", "info"):
            parser.error("store: expected an action ('migrate' or 'info')")
        if args.cache_dir is None:
            parser.error("store: --cache-dir is required")
        return _store_action(args.action, args.cache_dir)
    if args.artifact == "events":
        if args.action not in ("tail", "verify", "rebuild"):
            parser.error(
                "events: expected an action ('tail', 'verify' or 'rebuild')"
            )
        if args.events_dir is None:
            parser.error("events: --events-dir is required")
        return _events_action(args.action, args.events_dir, args.limit)
    if args.artifact == "sim":
        if args.action not in ("run", "replay", "shrink"):
            parser.error("sim: expected an action ('run', 'replay' or 'shrink')")
        return _sim_action(args, parser)
    if args.artifact == "catalog":
        if args.action not in ("list", "show", "export", "gen"):
            parser.error(
                "catalog: expected an action ('list', 'show', 'export' "
                "or 'gen')"
            )
        return _catalog_action(args, parser)
    if args.action is not None:
        parser.error(
            f"{args.action!r} only applies to the 'store', 'events', "
            "'sim' or 'catalog' artifact"
        )

    if args.artifact == "sensitivity":
        return _sensitivity_action(args, parser, metrics)
    if args.artifact == "serve":
        return _serve(args, faults)

    needs_study = args.artifact in {
        "table4",
        "table5",
        "figures",
        "appendix",
        "cost",
        "csv",
        "all",
    }
    result = None
    if needs_study:
        from repro.study.runner import StudyConfig

        overrides = {} if metrics is None else {"metrics": metrics}
        if universe is not None:
            # Sweep the mounted universe's own matrix (predictions stay
            # anchored to the built-in base system).
            overrides["applications"] = tuple(
                a.label for a in universe.applications
            )
            overrides["systems"] = tuple(m.name for m in universe.machines)
        config = StudyConfig(
            mode=args.mode,
            noise=not args.no_noise,
            cache_model=args.cache_model,
            **overrides,
        )
        result = run_study(
            config,
            workers=args.workers,
            store=args.cache_dir,
            checkpoint=args.checkpoint,
            faults=faults,
            max_retries=args.max_retries,
            chunk_timeout=args.chunk_timeout,
        )
        for failure in result.failures:
            print(
                f"repro-study: warning: chunk {failure.application!r} "
                f"quarantined after {failure.attempts} attempt(s): "
                f"{failure.error}: {failure.message}",
                file=sys.stderr,
            )
        if result.failures and not result.records:
            raise StudyAbortedError(
                f"all {len(result.failures)} study chunks were quarantined; "
                "nothing to report"
            )

    if args.artifact in {"table4", "all"}:
        _print_table4(result)
    if args.artifact in {"table5", "all"}:
        _print_table5(result)
    if args.artifact in {"figure1", "all"}:
        _print_figure1()
    if args.artifact in {"figures", "all"}:
        _print_figures(result)
    if args.artifact in {"appendix", "all"}:
        _print_appendix(result)
    if args.artifact in {"cost", "all"}:
        _print_cost(result)
    if args.artifact in {"probes", "all"}:
        _print_probes()
    if args.artifact == "csv":
        sys.stdout.write(result_to_csv(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
