"""Ground-truth application executor.

This module stands in for "running the real application on the real
machine".  It interprets an :class:`~repro.apps.model.ApplicationModel` on a
:class:`~repro.machines.spec.MachineSpec` with every modelled effect
enabled:

* per-level memory bandwidth from the analytic hierarchy, separately for
  each stride class and for the dependent/independent split of each block;
* block FP rates interpolated between the machine's dependent-chain and
  high-ILP efficiencies by the block's intrinsic ILP;
* FP/memory overlap (machine-specific ``overlap_factor``);
* network time from the shared network model, inflated by the machine's
  ``contention_factor`` (probes never see contention — that is one of the
  predictors' blind spots);
* Amdahl serial fraction and load imbalance growing with processor count;
* a systematic per-(machine, application) "port factor" representing
  compiler/runtime maturity differences across systems — deterministic,
  but invisible to every probe;
* deterministic run-to-run noise keyed by (machine, application, cpus).

Every predictive metric models a strict subset of these effects, so the
executor's output plays the role of the paper's observed times-to-solution
(Appendix Tables 6-10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.model import ApplicationModel, BasicBlock
from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.network.model import NetworkModel
from repro.util.rng import stable_rng

__all__ = ["GroundTruthExecutor", "ExecutionResult", "observed_time", "BlockTiming"]

#: Log-scale spread of the per-(machine, application) port factor: how much
#: compiler and runtime maturity moves whole-application performance on one
#: system relative to another.  No synthetic probe observes this.
PORT_SIGMA = 0.10


@dataclass(frozen=True)
class BlockTiming:
    """Per-timestep timing of one basic block on one rank.

    Attributes
    ----------
    name:
        Block name.
    fp_seconds:
        Time the FP work alone would take.
    mem_seconds:
        Time the memory traffic alone would take.
    seconds:
        Combined time after overlap.
    working_set:
        The block's working set (bytes) at this processor count.
    """

    name: str
    fp_seconds: float
    mem_seconds: float
    seconds: float
    working_set: float


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated application run.

    Attributes
    ----------
    machine, application, cpus:
        Identifiers of the run.
    total_seconds:
        Simulated wall-clock time-to-solution (what the paper's appendix
        tables report).
    compute_seconds:
        Per-run compute portion (all timesteps, after serial/imbalance
        scaling, before noise).
    comm_seconds:
        Per-run communication portion (with contention).
    noise_factor:
        The deterministic noise multiplier that was applied.
    blocks:
        Per-block, per-timestep breakdown.
    """

    machine: str
    application: str
    cpus: int
    total_seconds: float
    compute_seconds: float
    comm_seconds: float
    noise_factor: float
    blocks: tuple[BlockTiming, ...] = field(repr=False, default=())


class GroundTruthExecutor:
    """Execute application models on machine models with full fidelity.

    Parameters
    ----------
    machine:
        Target system.
    noise:
        Disable to make runs perfectly deterministic functions of the models
        (used by ablation benches to isolate the noise contribution).
    """

    def __init__(self, machine: MachineSpec, *, noise: bool = True):
        self.machine = machine
        self.noise = noise
        self.hierarchy = MemoryHierarchy.of(machine)
        self.network = NetworkModel.of(machine)

    # ------------------------------------------------------------------
    # per-block compute
    # ------------------------------------------------------------------
    def _fp_rate(self, block: BasicBlock) -> float:
        """Achieved FLOP/s for ``block`` on this machine."""
        proc = self.machine.processor
        eff = proc.dependent_fp_efficiency + block.fp_ilp * (
            proc.ilp_efficiency - proc.dependent_fp_efficiency
        )
        return proc.peak_flops * eff

    def _mem_time(self, block: BasicBlock, rank_cells: float, rank_bytes: float) -> float:
        """Seconds of memory traffic for one timestep of ``block`` on one rank."""
        ws = block.working_set(rank_bytes)
        total_bytes = block.bytes_per_cell * rank_cells
        dep = block.dependency_fraction
        time = 0.0
        for stride_class in StrideClass:
            frac = block.stride.fraction(stride_class)
            if frac <= 0.0:
                continue
            class_bytes = total_bytes * frac
            for dependent, part in ((False, 1.0 - dep), (True, dep)):
                if part <= 0.0:
                    continue
                pattern = AccessPattern(
                    working_set=ws,
                    stride=stride_class,
                    stride_elems=block.stride.short_stride_elems,
                    dependent=dependent,
                    chase_fraction=block.chase_fraction,
                )
                time += self.hierarchy.access_time(pattern, class_bytes * part)
        return time

    def block_timing(
        self, block: BasicBlock, rank_cells: float, rank_bytes: float
    ) -> BlockTiming:
        """Time one timestep of ``block`` on one rank."""
        t_fp = block.fp_per_cell * rank_cells / self._fp_rate(block)
        t_mem = self._mem_time(block, rank_cells, rank_bytes)
        hidden = self.machine.overlap_factor * min(t_fp, t_mem)
        return BlockTiming(
            name=block.name,
            fp_seconds=t_fp,
            mem_seconds=t_mem,
            seconds=t_fp + t_mem - hidden,
            working_set=block.working_set(rank_bytes),
        )

    def _port_factor(self, app: ApplicationModel) -> float:
        """Systematic code-quality multiplier for ``app`` on this machine.

        Log-normal with sigma :data:`PORT_SIGMA`, stable per (machine,
        application family) — the same factor at every processor count,
        as a compiler effect is.
        """
        rng = stable_rng("port-factor", self.machine.name, app.name, app.testcase)
        return float(math.exp(rng.normal(0.0, PORT_SIGMA)))

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def comm_time_per_step(self, app: ApplicationModel, cpus: int) -> float:
        """Per-timestep communication seconds (with contention) at ``cpus``."""
        if cpus == 1:
            return 0.0
        rank_bytes = app.rank_bytes(cpus)
        contention = self.machine.network.contention_factor
        time = 0.0
        for event in app.comms:
            size = event.size_bytes(rank_bytes)
            if event.is_p2p:
                per = self.network.point_to_point(size) * event.neighbors
            else:
                per = self.network.collective(event.kind, cpus, size)
            time += event.count * per
        return time * contention

    # ------------------------------------------------------------------
    # full run
    # ------------------------------------------------------------------
    def run(self, app: ApplicationModel, cpus: int) -> ExecutionResult:
        """Simulate ``app`` at ``cpus`` processors; return the full breakdown."""
        if cpus <= 0:
            raise ValueError(f"cpus must be > 0, got {cpus}")
        if cpus > self.machine.cpus:
            raise ValueError(
                f"{self.machine.name} has {self.machine.cpus} processors; "
                f"cannot run at {cpus}"
            )
        rank_cells = app.rank_cells(cpus)
        rank_bytes = app.rank_bytes(cpus)

        timings = tuple(
            self.block_timing(block, rank_cells, rank_bytes) for block in app.blocks
        )
        step_compute = sum(t.seconds for t in timings)
        step_compute *= self._port_factor(app)

        # Amdahl: a serial fraction of the whole-problem work is not divided.
        amdahl = 1.0 - app.serial_fraction + app.serial_fraction * cpus
        # Load imbalance grows slowly with the rank count.
        imbalance = 1.0 + app.imbalance * math.log2(max(cpus, 2)) / 10.0
        step_compute *= amdahl * imbalance

        step_comm = self.comm_time_per_step(app, cpus)

        compute = step_compute * app.timesteps
        comm = step_comm * app.timesteps

        noise_factor = 1.0
        if self.noise:
            rng = stable_rng("exec-noise", self.machine.name, app.label, cpus)
            draw = float(rng.normal(0.0, self.machine.noise_level))
            # clip to 3 sigma so a single unlucky key cannot distort a table
            limit = 3.0 * self.machine.noise_level
            noise_factor = 1.0 + max(-limit, min(limit, draw))

        total = (compute + comm) * noise_factor
        return ExecutionResult(
            machine=self.machine.name,
            application=app.label,
            cpus=cpus,
            total_seconds=total,
            compute_seconds=compute,
            comm_seconds=comm,
            noise_factor=noise_factor,
            blocks=timings,
        )


def observed_time(machine: MachineSpec, app: ApplicationModel, cpus: int) -> float:
    """Convenience wrapper: simulated time-to-solution in seconds."""
    return GroundTruthExecutor(machine).run(app, cpus).total_seconds
