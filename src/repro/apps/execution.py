"""Ground-truth application executor.

This module stands in for "running the real application on the real
machine".  It interprets an :class:`~repro.apps.model.ApplicationModel` on a
:class:`~repro.machines.spec.MachineSpec` with every modelled effect
enabled:

* per-level memory bandwidth from the analytic hierarchy, separately for
  each stride class and for the dependent/independent split of each block;
* block FP rates interpolated between the machine's dependent-chain and
  high-ILP efficiencies by the block's intrinsic ILP;
* FP/memory overlap (machine-specific ``overlap_factor``);
* network time from the shared network model, inflated by the machine's
  ``contention_factor`` (probes never see contention — that is one of the
  predictors' blind spots);
* Amdahl serial fraction and load imbalance growing with processor count;
* a systematic per-(machine, application) "port factor" representing
  compiler/runtime maturity differences across systems — deterministic,
  but invisible to every probe;
* deterministic run-to-run noise keyed by (machine, application, cpus).

Every predictive metric models a strict subset of these effects, so the
executor's output plays the role of the paper's observed times-to-solution
(Appendix Tables 6-10).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import NamedTuple

import numpy as np

from repro.apps.model import MIN_WORKING_SET, ApplicationModel, BasicBlock
from repro.core.kernels import accumulate_time_per_byte, combine_overlap
from repro.machines.spec import MachineSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.network.model import NetworkModel
from repro.util.rng import stable_rng

__all__ = [
    "GroundTruthExecutor",
    "ExecutionResult",
    "observed_time",
    "BlockTiming",
    "executor_for",
    "clear_execution_cache",
]

#: Log-scale spread of the per-(machine, application) port factor: how much
#: compiler and runtime maturity moves whole-application performance on one
#: system relative to another.  No synthetic probe observes this.
PORT_SIGMA = 0.10


class BlockTiming(NamedTuple):
    """Per-timestep timing of one basic block on one rank.

    A ``NamedTuple`` rather than a frozen dataclass: the executor builds
    one per (run, block) on the study's hot path, and tuple construction
    skips per-field ``object.__setattr__`` calls.

    Attributes
    ----------
    name:
        Block name.
    fp_seconds:
        Time the FP work alone would take.
    mem_seconds:
        Time the memory traffic alone would take.
    seconds:
        Combined time after overlap.
    working_set:
        The block's working set (bytes) at this processor count.
    """

    name: str
    fp_seconds: float
    mem_seconds: float
    seconds: float
    working_set: float


class ExecutionResult(NamedTuple):
    """Outcome of one simulated application run.

    A ``NamedTuple`` for the same hot-path reason as :class:`BlockTiming`.

    Attributes
    ----------
    machine, application, cpus:
        Identifiers of the run.
    total_seconds:
        Simulated wall-clock time-to-solution (what the paper's appendix
        tables report).
    compute_seconds:
        Per-run compute portion (all timesteps, after serial/imbalance
        scaling, before noise).
    comm_seconds:
        Per-run communication portion (with contention).
    noise_factor:
        The deterministic noise multiplier that was applied.
    blocks:
        Per-block, per-timestep breakdown.
    """

    machine: str
    application: str
    cpus: int
    total_seconds: float
    compute_seconds: float
    comm_seconds: float
    noise_factor: float
    blocks: tuple[BlockTiming, ...] = ()


#: The scalar executor prices each block's traffic stride class by stride
#: class (UNIT, SHORT, RANDOM — enum order), independent part before
#: dependent part.  The tensorised path replays the same accumulation order
#: so every float lands identically.
_COMBOS = tuple(
    (stride_class, dependent)
    for stride_class in StrideClass
    for dependent in (False, True)
)

#: Machine-independent block tensors, shared by every executor (a study
#: builds one executor per system; the block statics and pattern shapes are
#: identical across all of them).  Keyed by the (frozen, hashable) block
#: tuple itself so modified copies of an application never collide.
_APP_STATICS: dict[tuple[BasicBlock, ...], dict] = {}


def _app_statics(app: ApplicationModel) -> dict:
    """Block-axis statics of ``app`` that do not depend on the machine.

    ``active_shapes`` holds, per (stride class, dependence) combination with
    any traffic, the combination's class fractions, dependence parts, block
    mask and per-block pattern shapes; executors price the shapes against
    their own hierarchy.  All-empty combinations are dropped here once
    instead of being re-tested on every timing call.
    """
    cached = _APP_STATICS.get(app.blocks)
    if cached is not None:
        return cached
    blocks = app.blocks
    dep = np.array([b.dependency_fraction for b in blocks])
    class_frac = {
        sc: np.array([b.stride.fraction(sc) for b in blocks]) for sc in StrideClass
    }
    active_shapes = []
    for stride_class, dependent in _COMBOS:
        frac = class_frac[stride_class]
        part = dep if dependent else 1.0 - dep
        mask = (frac > 0.0) & (part > 0.0)
        if np.any(mask):
            patterns = [
                AccessPattern(
                    working_set=1.0,
                    stride=stride_class,
                    stride_elems=b.stride.short_stride_elems,
                    dependent=dependent,
                    chase_fraction=b.chase_fraction,
                )
                for b in blocks
            ]
            active_shapes.append((frac, part, mask, patterns))
    cached = {
        "fp_per_cell": np.array([b.fp_per_cell for b in blocks]),
        "bytes_per_cell": np.array([b.bytes_per_cell for b in blocks]),
        "dep": dep,
        "class_frac": class_frac,
        "ws_scale": np.array([b.ws_scale for b in blocks]),
        "ws_exponent": np.array([b.ws_exponent for b in blocks]),
        "active_shapes": active_shapes,
        "names": [b.name for b in blocks],
    }
    _APP_STATICS[app.blocks] = cached
    return cached


class GroundTruthExecutor:
    """Execute application models on machine models with full fidelity.

    Parameters
    ----------
    machine:
        Target system.
    noise:
        Disable to make runs perfectly deterministic functions of the models
        (used by ablation benches to isolate the noise contribution).
    """

    def __init__(self, machine: MachineSpec, *, noise: bool = True):
        self.machine = machine
        self.noise = noise
        self.hierarchy = MemoryHierarchy.of(machine)
        self.network = NetworkModel.of(machine)
        # Per-app tensors (block statics + per-(class, dependence) level
        # bandwidth matrices) and port factors recur for every processor
        # count and every repeat of a study cell; both are deterministic
        # functions of (machine, app) and safe to memoise per executor.
        self._app_cache: dict[tuple[BasicBlock, ...], dict] = {}
        self._port_cache: dict[tuple[str, str], float] = {}
        # Whole run_many outputs, keyed by the (hashable, frozen) app plus
        # the requested counts: the executor is a pure function of its
        # inputs, and a warm study replays identical (app, counts) batches
        # for every repeat.  Results are immutable NamedTuples, so sharing
        # them across callers is safe.
        self._result_cache: dict[tuple, list[ExecutionResult]] = {}

    # ------------------------------------------------------------------
    # per-block compute
    # ------------------------------------------------------------------
    def _fp_rate(self, block: BasicBlock) -> float:
        """Achieved FLOP/s for ``block`` on this machine."""
        proc = self.machine.processor
        eff = proc.dependent_fp_efficiency + block.fp_ilp * (
            proc.ilp_efficiency - proc.dependent_fp_efficiency
        )
        return proc.peak_flops * eff

    def _mem_time(self, block: BasicBlock, rank_cells: float, rank_bytes: float) -> float:
        """Seconds of memory traffic for one timestep of ``block`` on one rank."""
        ws = block.working_set(rank_bytes)
        total_bytes = block.bytes_per_cell * rank_cells
        dep = block.dependency_fraction
        time = 0.0
        for stride_class in StrideClass:
            frac = block.stride.fraction(stride_class)
            if frac <= 0.0:
                continue
            class_bytes = total_bytes * frac
            for dependent, part in ((False, 1.0 - dep), (True, dep)):
                if part <= 0.0:
                    continue
                pattern = AccessPattern(
                    working_set=ws,
                    stride=stride_class,
                    stride_elems=block.stride.short_stride_elems,
                    dependent=dependent,
                    chase_fraction=block.chase_fraction,
                )
                time += self.hierarchy.access_time(pattern, class_bytes * part)
        return time

    def block_timing(
        self, block: BasicBlock, rank_cells: float, rank_bytes: float
    ) -> BlockTiming:
        """Time one timestep of ``block`` on one rank."""
        t_fp = block.fp_per_cell * rank_cells / self._fp_rate(block)
        t_mem = self._mem_time(block, rank_cells, rank_bytes)
        hidden = self.machine.overlap_factor * min(t_fp, t_mem)
        return BlockTiming(
            name=block.name,
            fp_seconds=t_fp,
            mem_seconds=t_mem,
            seconds=t_fp + t_mem - hidden,
            working_set=block.working_set(rank_bytes),
        )

    def _port_factor(self, app: ApplicationModel) -> float:
        """Systematic code-quality multiplier for ``app`` on this machine.

        Log-normal with sigma :data:`PORT_SIGMA`, stable per (machine,
        application family) — the same factor at every processor count,
        as a compiler effect is.
        """
        key = (app.name, app.testcase)
        cached = self._port_cache.get(key)
        if cached is None:
            rng = stable_rng("port-factor", self.machine.name, app.name, app.testcase)
            cached = float(math.exp(rng.normal(0.0, PORT_SIGMA)))
            self._port_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # tensorised block timing
    # ------------------------------------------------------------------
    _COMBOS = _COMBOS  # module-level constant; kept as a class alias too

    def _app_tensors(self, app: ApplicationModel) -> dict:
        """Block-axis statics of ``app`` on this machine, built once.

        Extends the machine-independent :func:`_app_statics` with, per
        active (stride class, dependence) combination, the
        ``(blocks, levels)`` matrix of per-level useful bandwidths — the
        only machine-dependent pattern input that does *not* vary with the
        processor count.
        """
        cached = self._app_cache.get(app.blocks)
        if cached is not None:
            return cached
        statics = _app_statics(app)
        cached = dict(statics)
        cached["fp_rate"] = np.array([self._fp_rate(b) for b in app.blocks])
        # Stack the active combinations into single (combos, blocks[, levels])
        # tensors so the timing pass prices all of them in one dispatch set.
        shapes = statics["active_shapes"]
        if shapes:
            cached["frac_stack"] = np.array([frac for frac, _, _, _ in shapes])
            cached["part_stack"] = np.array([part for _, part, _, _ in shapes])
            cached["mask_stack"] = np.array([mask for _, _, mask, _ in shapes])
            flat_patterns = [p for _, _, _, patterns in shapes for p in patterns]
            cached["level_bw_stack"] = self.hierarchy.level_bandwidth_matrix(
                flat_patterns
            ).reshape(len(shapes), len(app.blocks), -1)
        else:
            cached["frac_stack"] = None
        self._app_cache[app.blocks] = cached
        return cached

    def _timings_arrays(
        self, app: ApplicationModel, rank_cells: np.ndarray, rank_bytes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(t_fp, t_mem, seconds, ws)``, each ``(n_runs, n_blocks)``.

        Bit-identical to mapping :meth:`block_timing` over ``app.blocks``
        for every (rank_cells, rank_bytes) row: per-level and
        per-combination accumulations run in the scalar path's order,
        combinations the scalar path skips (zero class fraction or zero
        dependence part) contribute an exact ``0.0``, and batching over
        runs only widens the elementwise operations.
        """
        t = self._app_tensors(app)
        rb = rank_bytes[:, None]
        ws = np.minimum(
            np.maximum(t["ws_scale"][None, :] * rb ** t["ws_exponent"][None, :],
                       MIN_WORKING_SET),
            rb,
        )
        residency = self.hierarchy.residency_matrix(ws.ravel()).reshape(
            ws.shape[0], ws.shape[1], -1
        )
        total_bytes = t["bytes_per_cell"][None, :] * rank_cells[:, None]
        t_fp = t["fp_per_cell"][None, :] * rank_cells[:, None] / t["fp_rate"][None, :]
        if t["frac_stack"] is None:
            t_mem = np.zeros(ws.shape)
        else:
            # All active combinations priced together: the per-level
            # accumulation runs in level order (as the scalar path does) on
            # a (combos, runs, blocks) stack, and the final reduce over the
            # short combos axis is NumPy's sequential left fold — the same
            # combination order and float order as accumulating one
            # combination at a time.
            level_bw = t["level_bw_stack"]  # (combos, blocks, levels)
            time_per_byte = accumulate_time_per_byte(residency, level_bw)
            eff_bw = 1.0 / time_per_byte
            term = (
                (total_bytes[None, :, :] * t["frac_stack"][:, None, :])
                * t["part_stack"][:, None, :]
                / eff_bw
            )
            t_mem = np.add.reduce(
                np.where(t["mask_stack"][:, None, :], term, 0.0), axis=0
            )
        seconds = combine_overlap(t_fp, t_mem, self.machine.overlap_factor)
        return t_fp, t_mem, seconds, ws

    def _timings(
        self, app: ApplicationModel, rank_cells: float, rank_bytes: float
    ) -> tuple[BlockTiming, ...]:
        """All blocks' timings in one block-axis pass (see `_timings_arrays`)."""
        t_fp, t_mem, seconds, ws = self._timings_arrays(
            app, np.array([rank_cells]), np.array([rank_bytes])
        )
        names = self._app_tensors(app)["names"]
        return tuple(
            BlockTiming(
                name=name,
                fp_seconds=float(fp),
                mem_seconds=float(mem),
                seconds=float(sec),
                working_set=float(w),
            )
            for name, fp, mem, sec, w in zip(names, t_fp[0], t_mem[0], seconds[0], ws[0])
        )

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def comm_time_per_step(self, app: ApplicationModel, cpus: int) -> float:
        """Per-timestep communication seconds (with contention) at ``cpus``."""
        if cpus == 1:
            return 0.0
        rank_bytes = app.rank_bytes(cpus)
        contention = self.machine.network.contention_factor
        time = 0.0
        for event in app.comms:
            size = event.size_bytes(rank_bytes)
            if event.is_p2p:
                per = self.network.point_to_point(size) * event.neighbors
            else:
                per = self.network.collective(event.kind, cpus, size)
            time += event.count * per
        return time * contention

    # ------------------------------------------------------------------
    # full run
    # ------------------------------------------------------------------
    def run(self, app: ApplicationModel, cpus: int) -> ExecutionResult:
        """Simulate ``app`` at ``cpus`` processors; return the full breakdown."""
        return self.run_many(app, (cpus,))[0]

    def run_many(
        self,
        app: ApplicationModel,
        cpus_list: "Sequence[int]",
        *,
        detail: bool = True,
    ) -> list[ExecutionResult]:
        """Simulate ``app`` at several processor counts in one tensor pass.

        The study runner's executor hot path: block timings for all counts
        are computed in a single ``(runs, blocks)`` batch, so a whole
        appendix-table column costs one set of NumPy dispatches instead of
        one per cell.  Each result is bit-identical to the corresponding
        scalar :meth:`run` call.  ``detail=False`` leaves each result's
        ``blocks`` empty (identical totals, skips building the per-block
        breakdown) for callers that only consume ``total_seconds``.
        """
        for cpus in cpus_list:
            if cpus <= 0:
                raise ValueError(f"cpus must be > 0, got {cpus}")
            if cpus > self.machine.cpus:
                raise ValueError(
                    f"{self.machine.name} has {self.machine.cpus} processors; "
                    f"cannot run at {cpus}"
                )
        if not cpus_list:
            return []
        memo_key = (app, tuple(cpus_list), detail)
        cached = self._result_cache.get(memo_key)
        if cached is not None:
            return list(cached)
        rank_cells = np.array([app.rank_cells(cpus) for cpus in cpus_list])
        rank_bytes = np.array([app.rank_bytes(cpus) for cpus in cpus_list])
        t_fp, t_mem, seconds, ws = self._timings_arrays(app, rank_cells, rank_bytes)
        names = self._app_tensors(app)["names"]
        port = self._port_factor(app)

        results = []
        for i, cpus in enumerate(cpus_list):
            if detail:
                timings = tuple(
                    BlockTiming(
                        name=name,
                        fp_seconds=float(fp),
                        mem_seconds=float(mem),
                        seconds=float(sec),
                        working_set=float(w),
                    )
                    for name, fp, mem, sec, w in zip(
                        names, t_fp[i], t_mem[i], seconds[i], ws[i]
                    )
                )
                step_compute = sum(t.seconds for t in timings)
            else:
                timings = ()
                # Same left-fold over the same per-block floats as the
                # detailed path's sum, so totals stay bit-identical.
                step_compute = 0
                for sec in seconds[i]:
                    step_compute += float(sec)
            step_compute *= port

            # Amdahl: a serial fraction of the whole-problem work is not
            # divided.
            amdahl = 1.0 - app.serial_fraction + app.serial_fraction * cpus
            # Load imbalance grows slowly with the rank count.
            imbalance = 1.0 + app.imbalance * math.log2(max(cpus, 2)) / 10.0
            step_compute *= amdahl * imbalance

            step_comm = self.comm_time_per_step(app, cpus)

            compute = step_compute * app.timesteps
            comm = step_comm * app.timesteps

            noise_factor = 1.0
            if self.noise:
                rng = stable_rng("exec-noise", self.machine.name, app.label, cpus)
                draw = float(rng.normal(0.0, self.machine.noise_level))
                # clip to 3 sigma so a single unlucky key cannot distort a
                # table
                limit = 3.0 * self.machine.noise_level
                noise_factor = 1.0 + max(-limit, min(limit, draw))

            total = (compute + comm) * noise_factor
            results.append(
                ExecutionResult(
                    machine=self.machine.name,
                    application=app.label,
                    cpus=cpus,
                    total_seconds=total,
                    compute_seconds=compute,
                    comm_seconds=comm,
                    noise_factor=noise_factor,
                    blocks=timings,
                )
            )
        self._result_cache[memo_key] = results
        return list(results)


#: Shared executors, keyed by machine *content* (name + fingerprint) and the
#: noise flag.  A study row, the prediction service and repeated bench
#: passes all ask for the same ten machines; sharing one executor per
#: machine keeps its app-tensor, port-factor and run_many memos warm across
#: every Engine built in the process.
_EXECUTOR_CACHE: dict[tuple[str, str, bool], GroundTruthExecutor] = {}


def executor_for(machine: MachineSpec, *, noise: bool = True) -> GroundTruthExecutor:
    """A process-shared :class:`GroundTruthExecutor` for ``machine``.

    Keyed by the spec's content fingerprint, so editing a machine spec
    mints a fresh executor instead of reusing stale tensors.
    """
    key = (machine.name, machine.fingerprint(), noise)
    cached = _EXECUTOR_CACHE.get(key)
    if cached is None:
        cached = GroundTruthExecutor(machine, noise=noise)
        _EXECUTOR_CACHE[key] = cached
    return cached


def clear_execution_cache() -> None:
    """Drop shared executors (and their memoised results) — bench/test hook."""
    _EXECUTOR_CACHE.clear()


def observed_time(machine: MachineSpec, app: ApplicationModel, cpus: int) -> float:
    """Convenience wrapper: simulated time-to-solution in seconds."""
    return GroundTruthExecutor(machine).run(app, cpus).total_seconds
