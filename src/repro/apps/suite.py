"""The five TI-05 application test cases (paper Section 2).

Each factory returns an :class:`~repro.apps.model.ApplicationModel` whose
basic blocks mirror the dominant loop nests of the real code: operation
mixes, stride signatures, working-set scaling and dependence fractions are
chosen to reflect what is publicly known about each solver (unstructured
finite-volume CFD for AVUS, layered ocean dynamics for HYCOM, overset
structured grids with ADI line solves for OVERFLOW2, AMR shock physics for
RFCTH).  Absolute operation counts are calibrated so that simulated
times-to-solution on the base p690 land in the range of the paper's
Appendix tables.

These are models, not the applications themselves (which are
export-controlled / unavailable); DESIGN.md §2 records the substitution.
"""

from __future__ import annotations

import dataclasses

from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.util.units import MIB

__all__ = [
    "avus_standard",
    "avus_large",
    "hycom_standard",
    "overflow2_standard",
    "rfcth_standard",
    "APPLICATIONS",
    "get_application",
    "list_applications",
]


def _hist(unit: float, short: float, random: float, stride: int = 4) -> StrideHistogram:
    return StrideHistogram.normalised(
        unit=unit, short=short, random=random, short_stride_elems=stride
    )


def _avus_blocks() -> tuple[BasicBlock, ...]:
    """Shared loop-nest structure of both AVUS test cases."""
    return (
        BasicBlock(
            name="flux_assembly",
            fp_per_cell=25_000.0,
            loads_per_cell=7_800.0,
            stores_per_cell=1_700.0,
            stride=_hist(0.55, 0.15, 0.30),
            ws_scale=8.0,
            ws_exponent=2.0 / 3.0,  # face-loop reuse window
            dependency_fraction=0.25,
            chase_fraction=0.7,
            fp_ilp=0.60,
        ),
        BasicBlock(
            name="gradient_reconstruction",
            fp_per_cell=8_300.0,
            loads_per_cell=2_500.0,
            stores_per_cell=830.0,
            stride=_hist(0.70, 0.20, 0.10),
            ws_scale=4.0,
            ws_exponent=2.0 / 3.0,
            dependency_fraction=0.10,
            chase_fraction=0.4,
            fp_ilp=0.70,
        ),
        BasicBlock(
            name="implicit_smoother",
            fp_per_cell=11_000.0,
            loads_per_cell=3_300.0,
            stores_per_cell=1_100.0,
            stride=_hist(0.60, 0.10, 0.30),
            ws_exponent=1.0,  # Gauss-Seidel sweeps the full rank data
            dependency_fraction=0.55,
            chase_fraction=0.5,
            fp_ilp=0.30,
        ),
        BasicBlock(
            name="turbulence_source",
            fp_per_cell=6_900.0,
            loads_per_cell=830.0,
            stores_per_cell=280.0,
            stride=_hist(0.80, 0.10, 0.10),
            ws_scale=2.0,
            ws_exponent=2.0 / 3.0,
            dependency_fraction=0.05,
            chase_fraction=0.3,
            fp_ilp=0.85,
        ),
    )


def _avus_comms() -> tuple[CommEvent, ...]:
    return (
        CommEvent(
            name="halo_exchange",
            kind="p2p",
            count=60.0,
            size_scale=2.0,
            size_exponent=2.0 / 3.0,
            neighbors=6,
        ),
        CommEvent(
            name="residual_allreduce",
            kind=CollectiveKind.ALLREDUCE,
            count=15.0,
            size_scale=8.0,
            size_exponent=0.0,
        ),
    )


def avus_standard() -> ApplicationModel:
    """AVUS standard: wing/flap/end-plates, 7 M cells, 100 timesteps."""
    return ApplicationModel(
        name="AVUS",
        testcase="standard",
        description=(
            "AFRL unstructured finite-volume CFD; fluid flow and turbulence "
            "of a wing with flap and end plates (7M cells, 100 timesteps)"
        ),
        cells=7.0e6,
        bytes_per_cell=2000.0,
        timesteps=100,
        cpu_counts=(32, 64, 128),
        blocks=_avus_blocks(),
        comms=_avus_comms(),
        serial_fraction=0.0005,
        imbalance=0.06,
    )


def avus_large() -> ApplicationModel:
    """AVUS large: unmanned aerial vehicle, 24 M cells, 150 timesteps."""
    return ApplicationModel(
        name="AVUS",
        testcase="large",
        description=(
            "AFRL unstructured finite-volume CFD; unmanned aerial vehicle "
            "(24M cells, 150 timesteps)"
        ),
        cells=24.0e6,
        bytes_per_cell=2000.0,
        timesteps=150,
        cpu_counts=(128, 256, 384),
        blocks=_avus_blocks(),
        comms=_avus_comms(),
        serial_fraction=0.0005,
        imbalance=0.08,
    )


def hycom_standard() -> ApplicationModel:
    """HYCOM standard: global quarter-degree ocean model."""
    return ApplicationModel(
        name="HYCOM",
        testcase="standard",
        description=(
            "NRL/LANL/U-Miami hybrid-coordinate ocean model; all of the "
            "world's oceans at 1/4 degree equatorial resolution"
        ),
        cells=2.0e7,
        bytes_per_cell=1600.0,
        timesteps=180,
        cpu_counts=(59, 96, 124),
        blocks=(
            BasicBlock(
                name="baroclinic_update",
                fp_per_cell=4_700.0,
                loads_per_cell=1_000.0,
                stores_per_cell=250.0,
                stride=_hist(0.80, 0.15, 0.05),
                ws_exponent=1.0,
                dependency_fraction=0.10,
                chase_fraction=0.3,
                fp_ilp=0.75,
            ),
            BasicBlock(
                name="barotropic_solver",
                fp_per_cell=1_000.0,
                loads_per_cell=200.0,
                stores_per_cell=67.0,
                stride=_hist(0.85, 0.10, 0.05),
                ws_scale=3.0,
                ws_exponent=2.0 / 3.0,  # 2D surface arrays
                dependency_fraction=0.15,
                chase_fraction=0.4,
                fp_ilp=0.60,
            ),
            BasicBlock(
                name="vertical_remap",
                fp_per_cell=2_000.0,
                loads_per_cell=500.0,
                stores_per_cell=170.0,
                stride=_hist(0.40, 0.45, 0.15, stride=6),
                ws_exponent=1.0,
                dependency_fraction=0.35,
                chase_fraction=0.7,
                fp_ilp=0.50,
            ),
            BasicBlock(
                name="equation_of_state",
                fp_per_cell=1_700.0,
                loads_per_cell=250.0,
                stores_per_cell=83.0,
                stride=_hist(0.90, 0.05, 0.05),
                ws_exponent=1.0,
                dependency_fraction=0.05,
                chase_fraction=0.2,
                fp_ilp=0.85,
            ),
        ),
        comms=(
            CommEvent(
                name="barotropic_halo",
                kind="p2p",
                count=120.0,
                size_scale=0.8,
                size_exponent=2.0 / 3.0,
                neighbors=4,
            ),
            CommEvent(
                name="solver_allreduce",
                kind=CollectiveKind.ALLREDUCE,
                count=40.0,
                size_scale=8.0,
                size_exponent=0.0,
            ),
        ),
        serial_fraction=0.002,
        imbalance=0.12,
    )


def overflow2_standard() -> ApplicationModel:
    """OVERFLOW2 standard: five spheres, 30 M grid points, 600 timesteps."""
    return ApplicationModel(
        name="OVERFLOW2",
        testcase="standard",
        description=(
            "NASA overset structured-grid CFD; fluid flow over five spheres "
            "(30M grid points, 600 timesteps)"
        ),
        cells=3.0e7,
        bytes_per_cell=1400.0,
        timesteps=600,
        cpu_counts=(32, 48, 64),
        blocks=(
            BasicBlock(
                name="rhs_stencil",
                fp_per_cell=1_000.0,
                loads_per_cell=230.0,
                stores_per_cell=57.0,
                stride=_hist(0.60, 0.35, 0.05, stride=4),
                ws_exponent=1.0,
                dependency_fraction=0.05,
                chase_fraction=0.3,
                fp_ilp=0.80,
            ),
            BasicBlock(
                name="adi_line_solve",
                fp_per_cell=860.0,
                loads_per_cell=260.0,
                stores_per_cell=86.0,
                stride=_hist(0.45, 0.45, 0.10, stride=8),
                ws_scale=400.0,
                ws_exponent=1.0 / 3.0,  # pencil working sets
                dependency_fraction=0.60,
                chase_fraction=0.25,
                fp_ilp=0.35,
            ),
            BasicBlock(
                name="turbulence_model",
                fp_per_cell=340.0,
                loads_per_cell=100.0,
                stores_per_cell=29.0,
                stride=_hist(0.70, 0.20, 0.10),
                ws_exponent=1.0,
                dependency_fraction=0.20,
                chase_fraction=0.4,
                fp_ilp=0.60,
            ),
            BasicBlock(
                name="overset_interp",
                fp_per_cell=86.0,
                loads_per_cell=43.0,
                stores_per_cell=14.0,
                stride=_hist(0.20, 0.20, 0.60),
                ws_exponent=2.0 / 3.0,
                dependency_fraction=0.40,
                chase_fraction=0.8,
                fp_ilp=0.50,
            ),
        ),
        comms=(
            CommEvent(
                name="grid_halo",
                kind="p2p",
                count=20.0,
                size_scale=1.0,
                size_exponent=2.0 / 3.0,
                neighbors=6,
            ),
            CommEvent(
                name="chimera_bcast",
                kind=CollectiveKind.BROADCAST,
                count=2.0,
                size_scale=4096.0,
                size_exponent=0.0,
            ),
            CommEvent(
                name="norm_allreduce",
                kind=CollectiveKind.ALLREDUCE,
                count=8.0,
                size_scale=8.0,
                size_exponent=0.0,
            ),
        ),
        serial_fraction=0.002,
        imbalance=0.10,
    )


def rfcth_standard() -> ApplicationModel:
    """RFCTH standard: rod impacting a plate, AMR with 5 refinement levels."""
    return ApplicationModel(
        name="RFCTH",
        testcase="standard",
        description=(
            "Sandia shock physics (non-export-controlled CTH); ten-material "
            "rod impacting an eight-material plate, 5-level AMR"
        ),
        cells=1.2e7,
        bytes_per_cell=2400.0,
        timesteps=120,
        cpu_counts=(16, 32, 64),
        blocks=(
            BasicBlock(
                name="hydro_sweep",
                fp_per_cell=770.0,
                loads_per_cell=205.0,
                stores_per_cell=64.0,
                stride=_hist(0.55, 0.25, 0.20),
                ws_exponent=1.0,
                dependency_fraction=0.30,
                chase_fraction=0.5,
                fp_ilp=0.50,
            ),
            BasicBlock(
                name="material_interface",
                fp_per_cell=385.0,
                loads_per_cell=115.0,
                stores_per_cell=38.0,
                stride=_hist(0.35, 0.15, 0.50),
                ws_exponent=1.0,
                dependency_fraction=0.50,
                chase_fraction=0.7,
                fp_ilp=0.40,
            ),
            BasicBlock(
                name="amr_regrid",
                fp_per_cell=128.0,
                loads_per_cell=90.0,
                stores_per_cell=45.0,
                stride=_hist(0.20, 0.10, 0.70),
                ws_exponent=1.0,
                dependency_fraction=0.55,
                chase_fraction=0.9,
                fp_ilp=0.30,
            ),
            BasicBlock(
                name="eos_tables",
                fp_per_cell=256.0,
                loads_per_cell=64.0,
                stores_per_cell=13.0,
                stride=_hist(0.30, 0.20, 0.50),
                ws_scale=12.0 * MIB,
                ws_exponent=0.0,  # fixed-size material tables
                dependency_fraction=0.45,
                chase_fraction=0.6,
                fp_ilp=0.50,
            ),
        ),
        comms=(
            CommEvent(
                name="block_halo",
                kind="p2p",
                count=30.0,
                size_scale=1.5,
                size_exponent=2.0 / 3.0,
                neighbors=6,
            ),
            CommEvent(
                name="dt_allreduce",
                kind=CollectiveKind.ALLREDUCE,
                count=15.0,
                size_scale=8.0,
                size_exponent=0.0,
            ),
            CommEvent(
                name="regrid_alltoall",
                kind=CollectiveKind.ALLTOALL,
                count=0.2,
                size_scale=0.05,
                size_exponent=2.0 / 3.0,
            ),
        ),
        serial_fraction=0.003,
        imbalance=0.15,
    )


#: Factories for the five test cases, keyed by study label.
APPLICATIONS = {
    "AVUS-standard": avus_standard,
    "AVUS-large": avus_large,
    "HYCOM-standard": hycom_standard,
    "OVERFLOW2-standard": overflow2_standard,
    "RFCTH-standard": rfcth_standard,
}


def get_application(label: str) -> ApplicationModel:
    """Instantiate the test case called ``label`` (e.g. ``"AVUS-standard"``).

    A ``"label@k"`` suffix (``k`` a positive integer) names a synthetic
    *replica* of the base test case: the same model under a distinct study
    label, so benches can scale the study matrix (``--scale N``) without
    inventing new applications.  Replicas resolve in any process — the
    suffix is parsed here, not registered — which keeps parallel study
    workers oblivious to scaling.
    """
    base_label, sep, suffix = label.partition("@")
    try:
        factory = APPLICATIONS[base_label]
    except KeyError:
        known = ", ".join(APPLICATIONS)
        raise KeyError(f"unknown application {label!r}; known: {known}") from None
    app = factory()
    if not sep:
        return app
    if not suffix.isdigit() or int(suffix) <= 0:
        raise KeyError(
            f"bad replica suffix in {label!r}; expected '<label>@<positive int>'"
        )
    # label round-trips: app.label == f"{base_label}@{suffix}"
    return dataclasses.replace(app, testcase=f"{app.testcase}@{suffix}")


def list_applications() -> list[str]:
    """Labels of the five TI-05 test cases in study order."""
    return list(APPLICATIONS)
