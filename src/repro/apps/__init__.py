"""Application workload models and the ground-truth executor.

The paper's five TI-05 application test cases (AVUS standard/large, HYCOM,
OVERFLOW2, RFCTH) are modelled as collections of *basic blocks* — each with
per-cell floating-point and memory operation counts, a stride signature, a
working-set scaling law and a dependence fraction — plus an MPI
communication signature per timestep (:mod:`repro.apps.model`,
:mod:`repro.apps.suite`).

:mod:`repro.apps.execution` is the ground-truth executor: it runs a model on
a machine with *every* effect enabled (per-level bandwidth, dependency
serialisation, FP/memory overlap, network contention, load imbalance,
deterministic noise), producing the "observed" wall-clock times that stand
in for the paper's Appendix Tables 6-10.

Label resolution lives in the scenario catalog (:mod:`repro.scenarios`):
:func:`get_application` / :func:`list_applications` here delegate to it,
so a mounted universe's applications resolve through this module too.
The module-level ``APPLICATIONS`` dict is deprecated — accessing it warns
and returns a catalog snapshot of *built models* (label ->
:class:`~repro.apps.model.ApplicationModel`, where the old suite dict
held factories); new code should import the catalog directly.
"""

from __future__ import annotations

import warnings

from repro.apps.execution import ExecutionResult, GroundTruthExecutor, observed_time
from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.apps.suite import (
    avus_large,
    avus_standard,
    hycom_standard,
    overflow2_standard,
    rfcth_standard,
)

__all__ = [
    "ApplicationModel",
    "BasicBlock",
    "CommEvent",
    "APPLICATIONS",
    "avus_standard",
    "avus_large",
    "hycom_standard",
    "overflow2_standard",
    "rfcth_standard",
    "get_application",
    "list_applications",
    "GroundTruthExecutor",
    "ExecutionResult",
    "observed_time",
]


def get_application(label: str) -> ApplicationModel:
    """Resolve ``label`` through the scenario catalog (built-ins + universe)."""
    from repro.scenarios import get_application as resolve

    return resolve(label)


def list_applications() -> list[str]:
    """Labels of every loaded application, catalog order (built-ins first)."""
    from repro.scenarios import list_applications as loaded

    return list(loaded())


def __getattr__(name: str):
    if name == "APPLICATIONS":
        warnings.warn(
            "repro.apps.APPLICATIONS is deprecated: resolve labels through "
            "repro.scenarios (get_application / CATALOG.application_map()), "
            "which also sees mounted universes and returns built models "
            "rather than factories",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.scenarios import CATALOG

        return CATALOG.application_map()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
