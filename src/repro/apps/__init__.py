"""Application workload models and the ground-truth executor.

The paper's five TI-05 application test cases (AVUS standard/large, HYCOM,
OVERFLOW2, RFCTH) are modelled as collections of *basic blocks* — each with
per-cell floating-point and memory operation counts, a stride signature, a
working-set scaling law and a dependence fraction — plus an MPI
communication signature per timestep (:mod:`repro.apps.model`,
:mod:`repro.apps.suite`).

:mod:`repro.apps.execution` is the ground-truth executor: it runs a model on
a machine with *every* effect enabled (per-level bandwidth, dependency
serialisation, FP/memory overlap, network contention, load imbalance,
deterministic noise), producing the "observed" wall-clock times that stand
in for the paper's Appendix Tables 6-10.
"""

from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.apps.suite import (
    APPLICATIONS,
    avus_large,
    avus_standard,
    get_application,
    hycom_standard,
    list_applications,
    overflow2_standard,
    rfcth_standard,
)
from repro.apps.execution import ExecutionResult, GroundTruthExecutor, observed_time

__all__ = [
    "ApplicationModel",
    "BasicBlock",
    "CommEvent",
    "APPLICATIONS",
    "avus_standard",
    "avus_large",
    "hycom_standard",
    "overflow2_standard",
    "rfcth_standard",
    "get_application",
    "list_applications",
    "GroundTruthExecutor",
    "ExecutionResult",
    "observed_time",
]
