"""Application workload model: basic blocks + communication events.

A model is machine-independent: it says *what* an application does per cell
per timestep (operation counts, stride mixes, working-set scaling,
dependence), not how long it takes.  The ground-truth executor and MetaSim
Tracer both interpret the same model — the executor with full fidelity on a
target machine, the tracer by sampling address streams on the base machine.

Working sets and message sizes follow power laws of the per-rank data size
``B`` (``scale * B**exponent``): exponent 1 is a full-data sweep, 2/3 a
surface (halo) quantity, 1/3 a pencil (line-solve) quantity.  This encodes
how domain decomposition shrinks per-rank footprints as processor counts
grow — the mechanism that moves working sets across cache boundaries between
the study's processor counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.util.validation import check_fraction, check_positive

__all__ = ["BasicBlock", "CommEvent", "ApplicationModel"]

#: Working sets below this are meaningless for the hierarchy model; clamp.
MIN_WORKING_SET = 4096.0


@dataclass(frozen=True)
class BasicBlock:
    """One traced basic block (a loop nest) of an application.

    All operation counts are *per cell per timestep*; the executor and
    tracer multiply by the per-rank cell count.

    Attributes
    ----------
    name:
        Identifier used in traces and reports.
    fp_per_cell:
        Floating-point operations per cell.
    loads_per_cell, stores_per_cell:
        8-byte memory references per cell.
    stride:
        True stride signature of the block's references.
    ws_scale, ws_exponent:
        Working-set law ``ws = ws_scale * rank_bytes**ws_exponent`` (bytes);
        exponent 0 gives a fixed working set of ``ws_scale`` bytes
        (lookup tables), exponent 1 a full per-rank sweep, 2/3 a surface,
        1/3 a pencil.
    dependency_fraction:
        Fraction of references on loop-carried dependence chains
        (indirection, recurrences, branchy inner loops).
    chase_fraction:
        Character of those dependence chains: share that is full-latency
        pointer chasing versus prefetchable dependence (see
        :class:`repro.memory.patterns.AccessPattern`).  ENHANCED MAPS
        induces 0.5; applications vary.
    fp_ilp:
        Instruction-level parallelism of the FP work: 1.0 = perfectly
        pipelineable (DGEMM-like), 0.0 = a serial dependence chain.
    """

    name: str
    fp_per_cell: float
    loads_per_cell: float
    stores_per_cell: float
    stride: StrideHistogram
    ws_scale: float = 1.0
    ws_exponent: float = 1.0
    dependency_fraction: float = 0.0
    chase_fraction: float = 0.5
    fp_ilp: float = 0.7

    def __post_init__(self) -> None:
        check_positive("fp_per_cell", self.fp_per_cell, allow_zero=True)
        check_positive("loads_per_cell", self.loads_per_cell, allow_zero=True)
        check_positive("stores_per_cell", self.stores_per_cell, allow_zero=True)
        check_positive("ws_scale", self.ws_scale)
        if not 0.0 <= self.ws_exponent <= 1.0:
            raise ValueError(f"ws_exponent must be in [0, 1], got {self.ws_exponent}")
        check_fraction("dependency_fraction", self.dependency_fraction)
        check_fraction("chase_fraction", self.chase_fraction)
        check_fraction("fp_ilp", self.fp_ilp)
        if self.loads_per_cell + self.stores_per_cell <= 0 and self.fp_per_cell <= 0:
            raise ValueError(f"block {self.name!r} performs no work")

    @property
    def refs_per_cell(self) -> float:
        """Total 8-byte references per cell."""
        return self.loads_per_cell + self.stores_per_cell

    @property
    def bytes_per_cell(self) -> float:
        """Memory traffic (useful bytes) per cell."""
        return self.refs_per_cell * 8.0

    def working_set(self, rank_bytes: float) -> float:
        """Working set (bytes) when each rank holds ``rank_bytes`` of data."""
        check_positive("rank_bytes", rank_bytes)
        ws = self.ws_scale * rank_bytes**self.ws_exponent
        return float(min(max(ws, MIN_WORKING_SET), rank_bytes))


@dataclass(frozen=True)
class CommEvent:
    """One class of MPI traffic issued per timestep per rank.

    Attributes
    ----------
    name:
        Identifier used in MPIDTRACE output.
    kind:
        ``"p2p"`` for halo-style point-to-point traffic, or a
        :class:`~repro.network.model.CollectiveKind`.
    count:
        Occurrences per timestep.
    size_scale, size_exponent:
        Message-size law ``size = size_scale * rank_bytes**size_exponent``.
        Halo exchanges use exponent 2/3 (surface-to-volume); fixed-size
        reductions use exponent 0.
    neighbors:
        Communication partners per occurrence (p2p only).
    """

    name: str
    kind: CollectiveKind | str
    count: float
    size_scale: float
    size_exponent: float = 0.0
    neighbors: int = 6

    def __post_init__(self) -> None:
        if isinstance(self.kind, str) and self.kind != "p2p":
            raise ValueError(
                f"kind must be 'p2p' or a CollectiveKind, got {self.kind!r}"
            )
        check_positive("count", self.count)
        check_positive("size_scale", self.size_scale)
        if self.size_exponent < 0 or self.size_exponent > 1:
            raise ValueError(f"size_exponent must be in [0, 1], got {self.size_exponent}")
        check_positive("neighbors", self.neighbors)

    @property
    def is_p2p(self) -> bool:
        """True for point-to-point (halo) traffic."""
        return self.kind == "p2p"

    def size_bytes(self, rank_bytes: float) -> float:
        """Per-message size (bytes) when each rank holds ``rank_bytes``."""
        check_positive("rank_bytes", rank_bytes)
        return float(self.size_scale * rank_bytes**self.size_exponent)


@dataclass(frozen=True)
class ApplicationModel:
    """A complete TI-05-style application test case.

    Attributes
    ----------
    name:
        Application family (``"AVUS"``).
    testcase:
        Test-case label (``"standard"`` / ``"large"``).
    description:
        One-line description for reports.
    cells:
        Total problem size (cells or grid points).
    bytes_per_cell:
        Resident state per cell, bytes.
    timesteps:
        Timesteps of the test case.
    cpu_counts:
        The three processor counts the study runs (paper Section 2).
    blocks:
        The traced basic blocks.
    comms:
        Per-timestep MPI signature.
    serial_fraction:
        Amdahl non-parallel fraction of per-timestep work.
    imbalance:
        Load-imbalance growth coefficient (executor applies
        ``1 + imbalance * log2(P) / 10``).
    """

    name: str
    testcase: str
    description: str
    cells: float
    bytes_per_cell: float
    timesteps: int
    cpu_counts: tuple[int, ...]
    blocks: tuple[BasicBlock, ...]
    comms: tuple[CommEvent, ...] = field(default_factory=tuple)
    serial_fraction: float = 0.001
    imbalance: float = 0.08

    def __post_init__(self) -> None:
        check_positive("cells", self.cells)
        check_positive("bytes_per_cell", self.bytes_per_cell)
        check_positive("timesteps", self.timesteps)
        if len(self.cpu_counts) == 0:
            raise ValueError("cpu_counts must not be empty")
        if any(p <= 0 for p in self.cpu_counts):
            raise ValueError(f"cpu_counts must be positive, got {self.cpu_counts}")
        if not self.blocks:
            raise ValueError("an application needs at least one basic block")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate block names in {self.name}: {names}")
        check_fraction("serial_fraction", self.serial_fraction)
        check_fraction("imbalance", self.imbalance)

    @property
    def label(self) -> str:
        """Study-wide identifier, e.g. ``"AVUS-standard"``."""
        return f"{self.name}-{self.testcase}"

    def rank_cells(self, cpus: int) -> float:
        """Cells owned by one rank at ``cpus`` processors."""
        check_positive("cpus", cpus)
        return self.cells / cpus

    def rank_bytes(self, cpus: int) -> float:
        """Resident data per rank (bytes) at ``cpus`` processors."""
        return self.rank_cells(cpus) * self.bytes_per_cell

    def block(self, name: str) -> BasicBlock:
        """Return the block called ``name``."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"{self.label} has no block named {name!r}")
