"""Declarative metric registry: Table 3 (and beyond) as data.

The paper's metrics are *compositions*: each one is an ordered list of
ingredient terms — an Equation-1 benchmark ratio, the convolver's FP term,
a memory-rate source, the NETBENCH network term, the ENHANCED-MAPS
dependent-access correction, or an IDC-style category score.  This module
makes that composition explicit: a :class:`MetricSpec` is a list of
``kind/source`` :class:`Term` strings plus an identity, and every metric
in the system — the nine of Table 3, the Section 4 balanced rating, and
any user-defined metric (#10 and up, registered in code or loaded from a
TOML file) — is an entry in the :class:`MetricRegistry`.

Term grammar (``kind/source`` with an optional ``:weight`` suffix)::

    ratio/hpl  ratio/stream  ratio/gups          Equation-1 simple ratios
    flops/hpl                                    convolver FP term (Rmax)
    mem/stream  mem/gups  mem/maps               convolver memory term
    net/netbench                                 MPI event pricing
    dep/enhanced-maps                            dependent-access curves
    score/hpl  score/stream  score/allreduce     IDC category scores

Each term carries a base cost (:data:`TERM_COSTS`, in "probe-ratio
evaluation" units); a spec's cost defaults to the sum of its terms'.  The
serve degradation ladder is **derived** from those costs — see
:func:`MetricRegistry.ladder` — instead of being hardcoded in the serving
layer, so registering a richer metric automatically slots it into the
fallback chain.

The registry stores only specs (data).  Runtime ``Metric`` objects are
built from specs by :mod:`repro.core.metrics`, which keeps this module
import-light (no convolver, no probes) and lets the serving layer consult
ladder/ingredient metadata without touching the numeric stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import nearest_ids

__all__ = [
    "Term",
    "MetricSpec",
    "MetricRegistry",
    "REGISTRY",
    "BUILTIN_SPECS",
    "TERM_COSTS",
    "DEGRADE_COST_RATIO",
    "load_metric_specs",
]

#: Base cost of each term, in "probe-ratio evaluation" units.  The
#: absolute numbers are a coarse but honest ranking of acquisition +
#: evaluation effort: a ratio reads two cached probe numbers; the
#: convolver's FP term needs operation counts; memory terms add rate
#: lookups (MAPS much more than STREAM — a whole curve family per
#: machine); the network term prices every traced MPI event; the
#: dependent-access correction doubles the MAPS curve set.
TERM_COSTS: dict[tuple[str, str], float] = {
    ("ratio", "hpl"): 1.0,
    ("ratio", "stream"): 1.0,
    ("ratio", "gups"): 1.0,
    ("flops", "hpl"): 6.0,
    ("mem", "stream"): 4.0,
    ("mem", "gups"): 4.0,
    ("mem", "maps"): 14.0,
    ("net", "netbench"): 12.0,
    ("dep", "enhanced-maps"): 8.0,
    ("score", "hpl"): 1.0,
    ("score", "stream"): 1.0,
    ("score", "allreduce"): 1.0,
}

#: A degradation rung must at least halve the cost of the rung above it —
#: a fallback that buys less headroom than that is not worth a distinct
#: rung under deadline pressure (it would fail for the same reasons at
#: nearly the same cost).
DEGRADE_COST_RATIO = 0.5

#: Metric kinds and the pipeline stages each must traverse.
_KIND_STAGES: dict[str, tuple[str, ...]] = {
    "simple": ("probe",),
    "predictive": ("probe", "trace", "convolve"),
    "composite": ("probe",),
}

#: Term kinds legal for each metric kind.
_KIND_TERMS: dict[str, frozenset[str]] = {
    "simple": frozenset({"ratio"}),
    "predictive": frozenset({"flops", "mem", "net", "dep"}),
    "composite": frozenset({"score"}),
}


@dataclass(frozen=True)
class Term:
    """One ingredient of a metric: ``kind/source`` with an optional weight.

    Attributes
    ----------
    kind:
        Ingredient class — ``ratio``, ``flops``, ``mem``, ``net``,
        ``dep`` or ``score``.
    source:
        The probe/analysis backing the term (``hpl``, ``stream``,
        ``gups``, ``maps``, ``netbench``, ``enhanced-maps``,
        ``allreduce``).
    weight:
        Composite-score weight (ignored by other kinds); weights need not
        sum to 1, the composite renormalises.
    """

    kind: str
    source: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if (self.kind, self.source) not in TERM_COSTS:
            known = ", ".join(f"{k}/{s}" for k, s in TERM_COSTS)
            raise ValueError(
                f"unknown term {self.kind}/{self.source}; known terms: {known}"
            )
        if not self.weight > 0:
            raise ValueError(
                f"term {self.kind}/{self.source} weight must be > 0, "
                f"got {self.weight!r}"
            )

    @classmethod
    def parse(cls, text: str) -> "Term":
        """Parse ``"kind/source"`` or ``"kind/source:weight"``."""
        body, sep, raw_weight = str(text).partition(":")
        kind, slash, source = body.partition("/")
        if not slash or not kind or not source:
            raise ValueError(
                f"term {text!r} is not of the form kind/source[:weight]"
            )
        weight = 1.0
        if sep:
            try:
                weight = float(raw_weight)
            except ValueError:
                raise ValueError(
                    f"term {text!r} has a non-numeric weight {raw_weight!r}"
                ) from None
        return cls(kind=kind.strip(), source=source.strip(), weight=weight)

    @property
    def cost(self) -> float:
        """The term's base cost (:data:`TERM_COSTS`)."""
        return TERM_COSTS[(self.kind, self.source)]

    def __str__(self) -> str:
        if self.weight != 1.0:
            return f"{self.kind}/{self.source}:{self.weight:g}"
        return f"{self.kind}/{self.source}"


@dataclass(frozen=True)
class MetricSpec:
    """Declarative identity of one metric: what it is, not how it runs.

    Attributes
    ----------
    number:
        Registry number.  Table 3 owns 1-9, the balanced rating is 0,
        user metrics start at 10.
    name:
        Unique lookup name (lowercase mnemonic, e.g. ``"conv+maps+net"``
        or ``"balanced"``); resolvable anywhere a metric number is.
    label:
        Display label (Table 3 composition, e.g. ``"HPL+MAPS+NET"``).
    kind:
        ``"simple"`` (Equation-1 ratio), ``"predictive"`` (convolver) or
        ``"composite"`` (weighted category scores).
    terms:
        Ordered ingredient list (see module docstring for the grammar).
    cost:
        Relative evaluation/acquisition cost; defaults to the sum of the
        terms' base costs.  Drives the derived degradation ladder.
    """

    number: int
    name: str
    label: str
    kind: str
    terms: tuple[Term, ...]
    cost: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError(f"metric number must be >= 0, got {self.number!r}")
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"metric name must be non-empty, no spaces: {self.name!r}")
        if self.name.isdigit():
            raise ValueError(
                f"metric name {self.name!r} is all digits; it would shadow a "
                "metric number"
            )
        if self.kind not in _KIND_STAGES:
            known = ", ".join(_KIND_STAGES)
            raise ValueError(f"unknown metric kind {self.kind!r}; known: {known}")
        terms = tuple(
            t if isinstance(t, Term) else Term.parse(t) for t in self.terms
        )
        object.__setattr__(self, "terms", terms)
        if not terms:
            raise ValueError(f"metric {self.name!r} needs at least one term")
        bad = [str(t) for t in terms if t.kind not in _KIND_TERMS[self.kind]]
        if bad:
            allowed = ", ".join(sorted(_KIND_TERMS[self.kind]))
            raise ValueError(
                f"{self.kind} metric {self.name!r} cannot carry term(s) "
                f"{', '.join(bad)} (allowed kinds: {allowed})"
            )
        if self.kind == "simple" and len(terms) != 1:
            raise ValueError(
                f"simple metric {self.name!r} must have exactly one ratio term"
            )
        if self.kind == "predictive":
            self._check_convolver_combo(terms)
        if self.cost == 0.0:
            object.__setattr__(self, "cost", sum(t.cost for t in terms))
        if not self.cost > 0:
            raise ValueError(f"metric {self.name!r} cost must be > 0, got {self.cost!r}")

    def _check_convolver_combo(self, terms: tuple[Term, ...]) -> None:
        """Reject term mixes the convolver has no pricing model for."""
        kinds = [t.kind for t in terms]
        if kinds.count("flops") != 1:
            raise ValueError(
                f"predictive metric {self.name!r} needs exactly one flops term"
            )
        mem = self.memory_sources
        supported = (
            frozenset(),
            frozenset({"stream"}),
            frozenset({"stream", "gups"}),
            frozenset({"maps"}),
        )
        if mem not in supported:
            raise ValueError(
                f"predictive metric {self.name!r} has unsupported memory term "
                f"mix {sorted(mem)}; supported: none, stream, stream+gups, maps"
            )
        if any(t.kind == "dep" for t in terms) and "maps" not in mem:
            raise ValueError(
                f"predictive metric {self.name!r}: dep/enhanced-maps requires "
                "mem/maps (the dependent curves are a MAPS family)"
            )

    # -- derived metadata ------------------------------------------------
    @property
    def memory_sources(self) -> frozenset[str]:
        """Sources of the ``mem`` terms (empty for a memory-blind metric)."""
        return frozenset(t.source for t in self.terms if t.kind == "mem")

    @property
    def needs(self) -> tuple[str, ...]:
        """Pipeline stages this metric must traverse (``probe`` [, ...])."""
        return _KIND_STAGES[self.kind]

    @property
    def network(self) -> bool:
        """Whether the metric prices traced MPI events."""
        return any(t.kind == "net" for t in self.terms)

    @property
    def dependent(self) -> bool:
        """Whether the metric blends ENHANCED-MAPS dependent curves."""
        return any(t.kind == "dep" for t in self.terms)

    @property
    def requirement(self) -> str:
        """Application-side acquisition machinery (paper Section 3).

        ``"none"`` for probe-only metrics, ``"counters"`` for convolver
        metrics needing only operation totals (#4/#5), ``"tracing"`` for
        metrics consuming per-block memory signatures (stride splits,
        working sets, dependency classes).
        """
        if self.kind != "predictive":
            return "none"
        needs_trace = self.dependent or bool(
            self.memory_sources & {"gups", "maps"}
        )
        return "tracing" if needs_trace else "counters"

    @property
    def ladder_eligible(self) -> bool:
        """Whether the metric may serve as a degradation rung.

        Composite scores normalise across *every* probed system, so they
        are not a drop-in coarser answer for a Table-3-semantics request;
        they lead their own ladder but never appear as a fallback.
        """
        return self.kind in ("simple", "predictive")


def _builtin_specs() -> tuple[MetricSpec, ...]:
    """Table 3 as data, plus the Section 4 balanced rating (#0)."""
    return (
        MetricSpec(0, "balanced", "BALANCED", "composite",
                   (Term("score", "hpl"), Term("score", "stream"),
                    Term("score", "allreduce"))),
        MetricSpec(1, "hpl", "HPL", "simple", (Term("ratio", "hpl"),)),
        MetricSpec(2, "stream", "STREAM", "simple", (Term("ratio", "stream"),)),
        MetricSpec(3, "gups", "GUPS", "simple", (Term("ratio", "gups"),)),
        MetricSpec(4, "conv", "HPL", "predictive", (Term("flops", "hpl"),)),
        MetricSpec(5, "conv+stream", "HPL+STREAM", "predictive",
                   (Term("flops", "hpl"), Term("mem", "stream"))),
        MetricSpec(6, "conv+stream+gups", "HPL+STREAM+GUPS", "predictive",
                   (Term("flops", "hpl"), Term("mem", "stream"),
                    Term("mem", "gups"))),
        MetricSpec(7, "conv+maps", "HPL+MAPS", "predictive",
                   (Term("flops", "hpl"), Term("mem", "maps"))),
        MetricSpec(8, "conv+maps+net", "HPL+MAPS+NET", "predictive",
                   (Term("flops", "hpl"), Term("mem", "maps"),
                    Term("net", "netbench"))),
        MetricSpec(9, "conv+maps+net+dep", "HPL+MAPS+NET+DEP", "predictive",
                   (Term("flops", "hpl"), Term("mem", "maps"),
                    Term("net", "netbench"), Term("dep", "enhanced-maps"))),
    )


#: First number available to user-registered metrics (0-9 are reserved
#: for the paper's built-ins).
_FIRST_USER_NUMBER = 10


class MetricRegistry:
    """Spec store with number *and* name lookup, plus derived metadata.

    The registry is the single source of truth for "what metrics exist":
    study config validation, CLI/HTTP request resolution, the serve
    degradation ladder and the cost table all consult it.  ``version``
    increments on every mutation so downstream caches (built metric
    objects, the derived ladder) invalidate precisely.
    """

    def __init__(self, specs: tuple[MetricSpec, ...] = ()):
        self._by_number: dict[int, MetricSpec] = {}
        self._by_name: dict[str, MetricSpec] = {}
        self._builtin_numbers: frozenset[int] = frozenset()
        self.version = 0
        for spec in specs:
            self._add(spec)
        self._builtin_numbers = frozenset(self._by_number)

    # -- mutation --------------------------------------------------------
    def _add(self, spec: MetricSpec) -> MetricSpec:
        if spec.number in self._by_number:
            raise ValueError(
                f"metric number {spec.number} is already registered "
                f"({self._by_number[spec.number].name!r})"
            )
        key = spec.name.lower()
        if key in self._by_name:
            raise ValueError(f"metric name {spec.name!r} is already registered")
        self._by_number[spec.number] = spec
        self._by_name[key] = spec
        self.version += 1
        return spec

    def register(self, spec: MetricSpec) -> MetricSpec:
        """Register a user metric (#10 and up).  Returns the spec."""
        if spec.number < _FIRST_USER_NUMBER:
            raise ValueError(
                f"metric numbers below {_FIRST_USER_NUMBER} are reserved for "
                f"built-ins; got {spec.number} ({spec.name!r})"
            )
        return self._add(spec)

    def unregister(self, key: "int | str") -> MetricSpec:
        """Remove a user metric (built-ins refuse).  Returns the old spec."""
        spec = self.spec(key)
        if spec.number in self._builtin_numbers:
            raise ValueError(f"cannot unregister built-in metric #{spec.number}")
        del self._by_number[spec.number]
        del self._by_name[spec.name.lower()]
        self.version += 1
        return spec

    def load_toml(self, path) -> tuple[MetricSpec, ...]:
        """Register every ``[[metric]]`` entry of a TOML spec file.

        Returns the registered specs, in file order.  The file format is
        documented in README "Custom metrics"; registration is atomic —
        a bad entry raises before any entry of the file is registered.
        """
        specs = load_metric_specs(path)
        for spec in specs:  # validate numbers/names before mutating
            if spec.number < _FIRST_USER_NUMBER:
                raise ValueError(
                    f"{path}: metric numbers below {_FIRST_USER_NUMBER} are "
                    f"reserved; got {spec.number} ({spec.name!r})"
                )
            if spec.number in self._by_number:
                raise ValueError(
                    f"{path}: metric number {spec.number} is already registered"
                )
            if spec.name.lower() in self._by_name:
                raise ValueError(
                    f"{path}: metric name {spec.name!r} is already registered"
                )
        seen_numbers = {s.number for s in specs}
        seen_names = {s.name.lower() for s in specs}
        if len(seen_numbers) != len(specs) or len(seen_names) != len(specs):
            raise ValueError(f"{path}: duplicate metric numbers/names in file")
        for spec in specs:
            self._add(spec)
        return specs

    # -- lookup ----------------------------------------------------------
    def spec(self, key: "int | str") -> MetricSpec:
        """Resolve a metric number, numeric string or name to its spec.

        Raises :class:`~repro.core.errors.UnknownIdError` (a
        :class:`KeyError`) carrying the known identifiers and the nearest
        matches, so service boundaries can render an actionable 400.
        """
        from repro.core.errors import UnknownIdError

        if isinstance(key, bool):
            pass  # fall through to the error path: True is not metric 1
        elif isinstance(key, int):
            if key in self._by_number:
                return self._by_number[key]
        elif isinstance(key, str):
            text = key.strip()
            if text.lstrip("-").isdigit() and int(text) in self._by_number:
                return self._by_number[int(text)]
            if text.lower() in self._by_name:
                return self._by_name[text.lower()]
        numbers = tuple(sorted(self._by_number))
        names = tuple(self._by_number[n].name for n in numbers)
        known = tuple(str(n) for n in numbers) + names
        # Real ints for the candidates so an off-by-a-few number (12) ranks
        # by distance; names ride along for misspelled-name lookups.
        nearest = nearest_ids(key, numbers + names)
        raise UnknownIdError("metric", key, known, nearest)

    def __contains__(self, key: object) -> bool:
        try:
            self.spec(key)  # type: ignore[arg-type]
        except KeyError:
            return False
        return True

    def numbers(self) -> tuple[int, ...]:
        """All registered numbers, ascending."""
        return tuple(sorted(self._by_number))

    def names(self) -> tuple[str, ...]:
        """All registered names, in number order."""
        return tuple(self._by_number[n].name for n in sorted(self._by_number))

    def specs(self) -> tuple[MetricSpec, ...]:
        """All specs, in number order."""
        return tuple(self._by_number[n] for n in sorted(self._by_number))

    def table3(self) -> tuple[MetricSpec, ...]:
        """The nine Table 3 specs (numbers 1-9), ascending."""
        return tuple(self._by_number[n] for n in range(1, 10) if n in self._by_number)

    # -- derived serving metadata ---------------------------------------
    def ladder(self) -> tuple[int, ...]:
        """The global degradation chain, derived from cost/ingredients.

        Rungs descend from the most capable ladder-eligible metric; each
        subsequent rung is the highest-cost (ties to the higher number —
        richer ingredients) eligible metric whose cost is at most
        :data:`DEGRADE_COST_RATIO` of the rung above, so every fallback
        at least halves the work.  The chain always ends on the cheapest
        eligible metric (ties to the *lowest* number — the most basic
        ingredient), the "two cached probe numbers" floor that stays
        servable when everything else is down.

        For the built-in registry this derives exactly the Table 3 chain
        9 → 7 → 5 → 3 → 1.
        """
        if getattr(self, "_ladder_version", None) == self.version:
            return self._ladder_cache
        pool = [s for s in self._by_number.values() if s.ladder_eligible]
        rungs: list[int] = []
        if pool:
            by_rank = sorted(pool, key=lambda s: (s.cost, s.number), reverse=True)
            current = by_rank[0]
            rungs.append(current.number)
            while True:
                threshold = current.cost * DEGRADE_COST_RATIO
                nxt = next((s for s in by_rank if s.cost <= threshold), None)
                if nxt is None:
                    break
                rungs.append(nxt.number)
                current = nxt
            floor = min(pool, key=lambda s: (s.cost, s.number))
            if floor.number not in rungs:
                rungs.append(floor.number)
        self._ladder_cache = tuple(rungs)
        self._ladder_version = self.version
        return self._ladder_cache

    def ladder_for(self, requested: "int | str") -> tuple[int, ...]:
        """Rungs to try for a request, best first.

        The requested metric leads; below it come the rungs of
        :meth:`ladder` that rank strictly lower on (cost, number) — the
        same ordering the chain itself descends, so equal-cost rungs
        below the request (metric 3 falling back to metric 1) stay
        reachable while nothing more expensive is retried.
        """
        spec = self.spec(requested)
        rank = (spec.cost, spec.number)
        return (spec.number,) + tuple(
            r for r in self.ladder()
            if (self._by_number[r].cost, r) < rank
        )


def load_metric_specs(path) -> tuple[MetricSpec, ...]:
    """Parse a TOML metric-spec file into :class:`MetricSpec` objects.

    Expected shape::

        [[metric]]
        number = 10
        name = "conv+stream+net"
        label = "HPL+STREAM+NET"   # optional; defaults to NAME upper-cased
        kind = "predictive"
        terms = ["flops/hpl", "mem/stream", "net/netbench"]
        cost = 22.0                # optional; defaults to the term-cost sum
    """
    import tomllib  # deferred: stdlib only on 3.11+, and only TOML users pay

    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    entries = doc.get("metric")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected at least one [[metric]] table")
    specs: list[MetricSpec] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: [[metric]] #{i + 1} is not a table")
        unknown = set(entry) - {"number", "name", "label", "kind", "terms", "cost"}
        if unknown:
            raise ValueError(
                f"{path}: [[metric]] #{i + 1} has unknown key(s) "
                f"{sorted(unknown)}"
            )
        missing = {"number", "name", "kind", "terms"} - set(entry)
        if missing:
            raise ValueError(
                f"{path}: [[metric]] #{i + 1} is missing key(s) {sorted(missing)}"
            )
        try:
            spec = MetricSpec(
                number=int(entry["number"]),
                name=str(entry["name"]),
                label=str(entry.get("label", str(entry["name"]).upper())),
                kind=str(entry["kind"]),
                terms=tuple(Term.parse(t) for t in entry["terms"]),
                cost=float(entry.get("cost", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: [[metric]] #{i + 1}: {exc}") from None
        specs.append(spec)
    return tuple(specs)


#: Specs of the paper's metrics: Table 3's nine plus the balanced rating.
BUILTIN_SPECS: tuple[MetricSpec, ...] = _builtin_specs()

#: The process-wide registry all layers consult.
REGISTRY = MetricRegistry(BUILTIN_SPECS)
