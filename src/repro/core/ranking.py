"""System-ranking utilities.

The paper's motivation is ranking HPC systems ("system X is 50% faster
than system Y for application Z").  These helpers rank systems by predicted
or observed time and quantify agreement between the two orderings.
"""

from __future__ import annotations

from collections.abc import Mapping

from scipy import stats

__all__ = ["rank_systems", "rank_agreement"]


def rank_systems(times: Mapping[str, float]) -> list[str]:
    """Systems ordered fastest first by the given times (seconds)."""
    if not times:
        raise ValueError("cannot rank zero systems")
    for name, t in times.items():
        if t <= 0:
            raise ValueError(f"time for {name!r} must be > 0, got {t!r}")
    return sorted(times, key=lambda name: times[name])


def rank_agreement(
    predicted: Mapping[str, float], actual: Mapping[str, float]
) -> dict[str, float]:
    """Kendall tau and Spearman rho between predicted and actual orderings.

    Only systems present in both mappings participate.

    Returns
    -------
    dict
        ``{"kendall_tau": ..., "spearman_rho": ..., "n": ...}``.
    """
    common = sorted(set(predicted) & set(actual))
    if len(common) < 2:
        raise ValueError("need at least two common systems to compare rankings")
    p = [predicted[name] for name in common]
    a = [actual[name] for name in common]
    tau = stats.kendalltau(p, a).statistic
    rho = stats.spearmanr(p, a).statistic
    return {"kendall_tau": float(tau), "spearman_rho": float(rho), "n": float(len(common))}
