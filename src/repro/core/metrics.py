"""The nine synthetic metrics of the paper's Table 3.

Simple metrics (#1-#3) apply Equation 1: the application is assumed faster
or slower exactly as the ratio of one benchmark result between the target
and the base system.  (Equation 1 is written for time-like results; our
benchmark numbers are rates, where higher is faster, so the ratio inverts:
``T' = R(X0)/R(X) * T(X0, Y)``.)

Predictive metrics (#4-#9) run the MetaSim Convolver with progressively
richer rate sources.  By default they predict *base-relative*:
``T'(X) = C(X)/C(X0) * T(X0)`` where ``C`` is the convolved time — scaling
the base system's measured runtime by the convolver's cross-machine ratio.
This is the reading under which the paper's Metric #4 is *identical* to
Metric #1 (both reduce to the Rmax ratio), as Table 4 reports.  The
``absolute`` mode returns the convolver's raw time instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.convolver import Convolver, MemoryModel, RateTable
from repro.probes.results import MachineProbes
from repro.tracing.trace import ApplicationTrace
from repro.util.validation import check_in

__all__ = [
    "PredictionContext",
    "Metric",
    "SimpleMetric",
    "PredictiveMetric",
    "ALL_METRICS",
    "get_metric",
    "predict_all",
]


@dataclass(frozen=True)
class PredictionContext:
    """Everything a metric may consume to predict one run.

    Attributes
    ----------
    trace:
        The application's transfer function (traced on the base system).
        Simple metrics ignore it.
    target_probes, base_probes:
        Probe suites of the target system X and base system X0.
    base_time:
        Measured wall-clock time ``T(X0, Y)`` on the base system.
    mode:
        ``"relative"`` (default, base-anchored) or ``"absolute"``
        (convolver output taken at face value; simple metrics have no
        absolute form and always use Equation 1).
    """

    trace: ApplicationTrace
    target_probes: MachineProbes
    base_probes: MachineProbes
    base_time: float
    mode: str = "relative"

    def __post_init__(self) -> None:
        check_in("mode", self.mode, ("relative", "absolute"))
        if self.base_time <= 0:
            raise ValueError(f"base_time must be > 0, got {self.base_time!r}")


class Metric:
    """Common interface of all Table 3 metrics.

    Attributes
    ----------
    number:
        Metric number (1-9) as in Table 3.
    name:
        Short composition label (e.g. ``"HPL+MAPS+NET"``).
    kind:
        ``"simple"`` or ``"predictive"``.
    """

    number: int
    name: str
    kind: str

    def predict(self, ctx: PredictionContext) -> float:
        """Predicted wall-clock seconds ``T'(X, Y)``."""
        raise NotImplementedError

    def predict_many(
        self,
        trace: ApplicationTrace,
        target_probes_list: list[MachineProbes],
        base_probes: MachineProbes,
        base_time: float,
        mode: str = "relative",
    ) -> list[float]:
        """Predict one (application, cpus) run on several target machines.

        Shared-trace batch form of :meth:`predict`: the trace, base probes
        and base time are fixed while targets vary, which lets predictive
        metrics convolve the base system once and price all targets in
        block-axis NumPy passes.  Each element is bit-identical to the
        corresponding scalar :meth:`predict` call.
        """
        return [
            self.predict(
                PredictionContext(
                    trace=trace,
                    target_probes=probes,
                    base_probes=base_probes,
                    base_time=base_time,
                    mode=mode,
                )
            )
            for probes in target_probes_list
        ]

    @property
    def label(self) -> str:
        """Display label, e.g. ``"3-S GUPS"``."""
        return f"{self.number}-{self.kind[0].upper()} {self.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Metric #{self.number} {self.name}>"


class SimpleMetric(Metric):
    """Equation-1 ratio prediction from a single benchmark rate.

    Parameters
    ----------
    number, name:
        Table 3 identity.
    rate_name:
        Which probe rate to ratio: ``"hpl"``, ``"stream"`` or ``"gups"``.
    """

    kind = "simple"

    def __init__(self, number: int, name: str, rate_name: str):
        self.number = number
        self.name = name
        self.rate_name = rate_name

    def predict(self, ctx: PredictionContext) -> float:
        r_target = ctx.target_probes.simple_rate(self.rate_name)
        r_base = ctx.base_probes.simple_rate(self.rate_name)
        return (r_base / r_target) * ctx.base_time


class PredictiveMetric(Metric):
    """Convolver-backed prediction (Metrics #4-#9).

    Parameters
    ----------
    number, name:
        Table 3 identity.
    memory_model:
        The convolver's memory rate source.
    network:
        Include the NETBENCH term.
    """

    kind = "predictive"

    def __init__(
        self,
        number: int,
        name: str,
        memory_model: MemoryModel,
        *,
        network: bool = False,
    ):
        self.number = number
        self.name = name
        self.convolver = Convolver(memory_model, network=network)

    def predict(self, ctx: PredictionContext) -> float:
        c_target = self.convolver.predict(ctx.trace, ctx.target_probes).total_seconds
        if ctx.mode == "absolute":
            return c_target
        c_base = self.convolver.predict(ctx.trace, ctx.base_probes).total_seconds
        return (c_target / c_base) * ctx.base_time

    def predict_many(
        self,
        trace: ApplicationTrace,
        target_probes_list: list[MachineProbes],
        base_probes: MachineProbes,
        base_time: float,
        mode: str = "relative",
    ) -> list[float]:
        """Batch :meth:`predict` over targets, convolving the base once.

        Targets and base share one :class:`~repro.core.convolver.RateTable`
        (base as the last column), so the whole row is one matrix pass.
        """
        check_in("mode", mode, ("relative", "absolute"))
        rates = RateTable(trace, list(target_probes_list) + [base_probes])
        return self._predict_from_rates(rates, base_time, mode)

    def _predict_from_rates(
        self, rates: RateTable, base_time: float, mode: str
    ) -> list[float]:
        """Price a prepared rate table (targets plus trailing base column)."""
        totals = self.convolver.total_seconds_matrix(rates)
        c_targets = [float(t) for t in totals[:-1]]
        if mode == "absolute":
            return c_targets
        c_base = float(totals[-1])
        return [(c_target / c_base) * base_time for c_target in c_targets]


def predict_all(
    metrics: list[Metric],
    trace: ApplicationTrace,
    target_probes_list: list[MachineProbes],
    base_probes: MachineProbes,
    base_time: float,
    mode: str = "relative",
) -> dict[int, list[float]]:
    """Predict one (application, cpus) row for every metric at once.

    The study runner's inner step: all predictive metrics share a single
    :class:`~repro.core.convolver.RateTable` (one block extraction, one set
    of MAPS interpolations, one network pricing — per row, not per metric),
    then each prices its own matrix pass.  Every returned value is
    bit-identical to the corresponding scalar :meth:`Metric.predict` call.
    """
    check_in("mode", mode, ("relative", "absolute"))
    rates: RateTable | None = None
    out: dict[int, list[float]] = {}
    for metric in metrics:
        if isinstance(metric, PredictiveMetric):
            if rates is None:
                rates = RateTable(trace, list(target_probes_list) + [base_probes])
            out[metric.number] = metric._predict_from_rates(rates, base_time, mode)
        else:
            out[metric.number] = metric.predict_many(
                trace, target_probes_list, base_probes, base_time, mode
            )
    return out


def _build_metrics() -> dict[int, Metric]:
    return {
        1: SimpleMetric(1, "HPL", "hpl"),
        2: SimpleMetric(2, "STREAM", "stream"),
        3: SimpleMetric(3, "GUPS", "gups"),
        4: PredictiveMetric(4, "HPL", MemoryModel.NONE),
        5: PredictiveMetric(5, "HPL+STREAM", MemoryModel.STREAM),
        6: PredictiveMetric(6, "HPL+STREAM+GUPS", MemoryModel.STREAM_GUPS),
        7: PredictiveMetric(7, "HPL+MAPS", MemoryModel.MAPS),
        8: PredictiveMetric(8, "HPL+MAPS+NET", MemoryModel.MAPS, network=True),
        9: PredictiveMetric(9, "HPL+MAPS+NET+DEP", MemoryModel.MAPS_DEP, network=True),
    }


#: The nine metrics of Table 3, keyed by number.
ALL_METRICS: dict[int, Metric] = _build_metrics()


def get_metric(number: int) -> Metric:
    """Return metric ``number`` (1-9)."""
    try:
        return ALL_METRICS[number]
    except KeyError:
        raise KeyError(f"metric number must be 1-9, got {number!r}") from None
