"""Runtime metric objects, built from the declarative registry.

The identity of every metric — number, name, ingredient terms, cost —
lives as data in :mod:`repro.core.registry` (Table 3's nine, the
Section 4 balanced rating, and any user-registered metric).  This module
is the *runtime* half: it turns a :class:`~repro.core.registry.MetricSpec`
into an executable :class:`Metric` and provides the canonical batch
evaluation path (:func:`predict_all`) used by the engine.

Simple metrics (#1-#3) apply Equation 1: the application is assumed faster
or slower exactly as the ratio of one benchmark result between the target
and the base system.  (Equation 1 is written for time-like results; our
benchmark numbers are rates, where higher is faster, so the ratio inverts:
``T' = R(X0)/R(X) * T(X0, Y)``.)

Predictive metrics (#4-#9) run the MetaSim Convolver with progressively
richer rate sources.  By default they predict *base-relative*:
``T'(X) = C(X)/C(X0) * T(X0)`` where ``C`` is the convolved time — scaling
the base system's measured runtime by the convolver's cross-machine ratio.
This is the reading under which the paper's Metric #4 is *identical* to
Metric #1 (both reduce to the Rmax ratio), as Table 4 reports.  The
``absolute`` mode returns the convolver's raw time instead.

Composite metrics (the balanced rating, #0) apply Equation 1 with an
IDC-style weighted category score as the rate; the score normalises
against the best probed system per category, so these metrics consult the
whole machine registry rather than just the target/base pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convolver import Convolver, MemoryModel, RateTable
from repro.core.registry import REGISTRY, MetricSpec
from repro.probes.results import MachineProbes
from repro.tracing.trace import ApplicationTrace
from repro.util.validation import check_in

__all__ = [
    "PredictionContext",
    "Metric",
    "SimpleMetric",
    "PredictiveMetric",
    "CompositeMetric",
    "ALL_METRICS",
    "get_metric",
    "resolve_metrics",
    "build_metric",
    "predict_all",
]


@dataclass(frozen=True)
class PredictionContext:
    """Everything a metric may consume to predict one run.

    Attributes
    ----------
    trace:
        The application's transfer function (traced on the base system).
        Probe-only metrics (simple ratios, composites) ignore it, and a
        probe-only evaluation may pass ``None`` — the serve degradation
        path predicts simple metrics without ever tracing.
    target_probes, base_probes:
        Probe suites of the target system X and base system X0.
    base_time:
        Measured wall-clock time ``T(X0, Y)`` on the base system.
    mode:
        ``"relative"`` (default, base-anchored) or ``"absolute"``
        (convolver output taken at face value; simple metrics have no
        absolute form and always use Equation 1).
    """

    trace: ApplicationTrace | None
    target_probes: MachineProbes
    base_probes: MachineProbes
    base_time: float
    mode: str = "relative"

    def __post_init__(self) -> None:
        check_in("mode", self.mode, ("relative", "absolute"))
        if self.base_time <= 0:
            raise ValueError(f"base_time must be > 0, got {self.base_time!r}")


class Metric:
    """Common interface of all registered metrics.

    Attributes
    ----------
    number:
        Registry number (Table 3 uses 1-9, the balanced rating 0, user
        metrics 10+).
    name:
        Short composition label (e.g. ``"HPL+MAPS+NET"``).
    kind:
        ``"simple"``, ``"predictive"`` or ``"composite"``.
    needs:
        Pipeline stages the metric must traverse (``("probe",)`` for
        probe-only metrics, ``("probe", "trace", "convolve")`` for
        convolver-backed ones) — the serving layer derives its
        stage/ladder handling from this.
    """

    number: int
    name: str
    kind: str
    needs: tuple[str, ...]

    def predict(self, ctx: PredictionContext) -> float:
        """Predicted wall-clock seconds ``T'(X, Y)``."""
        raise NotImplementedError

    def predict_many(
        self,
        trace: ApplicationTrace | None,
        target_probes_list: list[MachineProbes],
        base_probes: MachineProbes,
        base_time: float,
        mode: str = "relative",
    ) -> list[float]:
        """Predict one (application, cpus) run on several target machines.

        Shared-trace batch form of :meth:`predict`: the trace, base probes
        and base time are fixed while targets vary, which lets predictive
        metrics convolve the base system once and price all targets in
        block-axis NumPy passes.  Each element is bit-identical to the
        corresponding scalar :meth:`predict` call.
        """
        return [
            self.predict(
                PredictionContext(
                    trace=trace,
                    target_probes=probes,
                    base_probes=base_probes,
                    base_time=base_time,
                    mode=mode,
                )
            )
            for probes in target_probes_list
        ]

    @property
    def label(self) -> str:
        """Display label, e.g. ``"3-S GUPS"``."""
        return f"{self.number}-{self.kind[0].upper()} {self.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Metric #{self.number} {self.name}>"


class SimpleMetric(Metric):
    """Equation-1 ratio prediction from a single benchmark rate.

    Parameters
    ----------
    number, name:
        Registry identity.
    rate_name:
        Which probe rate to ratio: ``"hpl"``, ``"stream"`` or ``"gups"``.
    """

    kind = "simple"
    needs = ("probe",)

    def __init__(self, number: int, name: str, rate_name: str):
        self.number = number
        self.name = name
        self.rate_name = rate_name

    def predict(self, ctx: PredictionContext) -> float:
        r_target = ctx.target_probes.simple_rate(self.rate_name)
        r_base = ctx.base_probes.simple_rate(self.rate_name)
        return (r_base / r_target) * ctx.base_time


class PredictiveMetric(Metric):
    """Convolver-backed prediction (Metrics #4-#9).

    Parameters
    ----------
    number, name:
        Registry identity.
    memory_model:
        The convolver's memory rate source.
    network:
        Include the NETBENCH term.
    """

    kind = "predictive"
    needs = ("probe", "trace", "convolve")

    def __init__(
        self,
        number: int,
        name: str,
        memory_model: MemoryModel,
        *,
        network: bool = False,
    ):
        self.number = number
        self.name = name
        self.convolver = Convolver(memory_model, network=network)

    def predict(self, ctx: PredictionContext) -> float:
        if ctx.trace is None:
            raise ValueError(f"metric #{self.number} ({self.name}) needs a trace")
        c_target = self.convolver.predict(ctx.trace, ctx.target_probes).total_seconds
        if ctx.mode == "absolute":
            return c_target
        c_base = self.convolver.predict(ctx.trace, ctx.base_probes).total_seconds
        return (c_target / c_base) * ctx.base_time

    def predict_many(
        self,
        trace: ApplicationTrace | None,
        target_probes_list: list[MachineProbes],
        base_probes: MachineProbes,
        base_time: float,
        mode: str = "relative",
    ) -> list[float]:
        """Batch :meth:`predict` over targets, convolving the base once.

        Targets and base share one :class:`~repro.core.convolver.RateTable`
        (base as the last column), so the whole row is one matrix pass.
        """
        check_in("mode", mode, ("relative", "absolute"))
        if trace is None:
            raise ValueError(f"metric #{self.number} ({self.name}) needs a trace")
        rates = RateTable(trace, list(target_probes_list) + [base_probes])
        return self._predict_from_rates(rates, base_time, mode)

    def _predict_from_rates(
        self, rates: RateTable, base_time: float, mode: str
    ) -> list[float]:
        """Price a prepared rate table (targets plus trailing base column)."""
        totals = self.convolver.total_seconds_matrix(rates)
        c_targets = [float(t) for t in totals[:-1]]
        if mode == "absolute":
            return c_targets
        c_base = float(totals[-1])
        return [(c_target / c_base) * base_time for c_target in c_targets]


class CompositeMetric(Metric):
    """IDC balanced-rating prediction from weighted category scores (#0).

    Equation 1 with the composite 0-100 score as the rate.  The score
    normalises each category against the best system in the machine
    registry, so the metric probes *every* registered machine (cached) —
    not just the target/base pair — the first time it predicts.

    Parameters
    ----------
    number, name:
        Registry identity.
    weights:
        (hpl, stream, allreduce) category weights; categories absent from
        the spec carry weight 0.
    """

    kind = "composite"
    needs = ("probe",)

    def __init__(self, number: int, name: str, weights: tuple[float, float, float]):
        self.number = number
        self.name = name
        self.weights = weights
        self._rating = None

    def rating(self):
        """The backing :class:`~repro.core.balanced.BalancedRating`, built
        lazily over every registered machine's (cached) probe suite."""
        if self._rating is None:
            from repro.core.balanced import BalancedRating
            from repro.scenarios import CATALOG
            from repro.probes.suite import probe_machine

            probes = {
                name: probe_machine(spec)
                for name, spec in CATALOG.machine_map().items()
            }
            self._rating = BalancedRating(probes, self.weights)
        return self._rating

    def predict(self, ctx: PredictionContext) -> float:
        return self.rating().predict(
            ctx.target_probes.machine, ctx.base_probes.machine, ctx.base_time
        )


def _memory_model_for(spec: MetricSpec) -> MemoryModel:
    """Map a predictive spec's memory/dep terms to a convolver model."""
    if spec.dependent:
        return MemoryModel.MAPS_DEP
    mem = spec.memory_sources
    if not mem:
        return MemoryModel.NONE
    if mem == {"stream"}:
        return MemoryModel.STREAM
    if mem == {"stream", "gups"}:
        return MemoryModel.STREAM_GUPS
    return MemoryModel.MAPS


def build_metric(spec: MetricSpec) -> Metric:
    """Construct the runtime :class:`Metric` for a spec (uncached)."""
    if spec.kind == "simple":
        return SimpleMetric(spec.number, spec.label, spec.terms[0].source)
    if spec.kind == "predictive":
        return PredictiveMetric(
            spec.number,
            spec.label,
            _memory_model_for(spec),
            network=spec.network,
        )
    from repro.core.balanced import CATEGORY_NAMES

    by_category = {t.source: t.weight for t in spec.terms}
    weights = tuple(by_category.get(name, 0.0) for name in CATEGORY_NAMES)
    return CompositeMetric(spec.number, spec.label, weights)


#: Built metrics, cached per spec (specs are frozen and hashable; a
#: re-registered number yields a distinct spec, hence a fresh build).
_BUILT: dict[MetricSpec, Metric] = {}


def get_metric(key: "int | str") -> Metric:
    """Return the metric for a registry number or name.

    Accepts Table 3 numbers (1-9), the balanced rating (0 or
    ``"balanced"``), user metrics (10+), and any registered name.  Raises
    :class:`~repro.core.errors.UnknownIdError` — a :class:`KeyError` —
    with nearest-match suggestions for anything else.
    """
    spec = REGISTRY.spec(key)
    metric = _BUILT.get(spec)
    if metric is None:
        metric = _BUILT[spec] = build_metric(spec)
    return metric


def resolve_metrics(keys) -> list[Metric]:
    """Resolve a mixed number/name sequence to metric objects, in order."""
    return [get_metric(k) for k in keys]


#: The nine metrics of Table 3, keyed by number.  A fixed view: user
#: registrations (#10+) are reachable via :func:`get_metric`, not here.
ALL_METRICS: dict[int, Metric] = {
    spec.number: get_metric(spec.number) for spec in REGISTRY.table3()
}


def predict_all(
    metrics: list[Metric],
    trace: ApplicationTrace | None,
    target_probes_list: list[MachineProbes],
    base_probes: MachineProbes,
    base_time: float,
    mode: str = "relative",
) -> dict[int, list[float]]:
    """Predict one (application, cpus) row for every metric at once.

    The engine's convolve-stage step: all predictive metrics share a
    single :class:`~repro.core.convolver.RateTable` (one block extraction,
    one set of MAPS interpolations, one network pricing — per row, not per
    metric), then each prices its own matrix pass.  Every returned value
    is bit-identical to the corresponding scalar :meth:`Metric.predict`
    call.  ``trace`` may be ``None`` when no predictive metric is present.
    """
    check_in("mode", mode, ("relative", "absolute"))
    rates: RateTable | None = None
    out: dict[int, list[float]] = {}
    for metric in metrics:
        if isinstance(metric, PredictiveMetric):
            if rates is None:
                if trace is None:
                    raise ValueError(
                        f"metric #{metric.number} ({metric.name}) needs a trace"
                    )
                rates = RateTable(trace, list(target_probes_list) + [base_probes])
            out[metric.number] = metric._predict_from_rates(rates, base_time, mode)
        else:
            out[metric.number] = metric.predict_many(
                trace, target_probes_list, base_probes, base_time, mode
            )
    return out
