"""Canonical public home of the validated pipeline option enums.

The definitions live in :mod:`repro.util.options` (the bottom of the
dependency stack, so the tracer and trace store can share them without an
import cycle); this module is the import point the upper layers — study
config, prediction service, CLI — use.
"""

from repro.util.options import CacheModel, Mode

__all__ = ["Mode", "CacheModel"]
