"""Prediction-error statistics (paper Equation 2) and the failure taxonomy.

Signed error keeps the direction — "negative error indicates the
prediction was faster than the actual runtime" — while absolute error is
what the paper averages, "preventing error cancellation".

The module also defines the exception hierarchy the fault-tolerant study
engine quarantines by: every failure a study can survive maps to one
:class:`ReproError` subclass, each carrying a distinct CLI exit code so
scripted callers can branch on *what* went wrong without parsing text.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

__all__ = [
    "signed_error",
    "absolute_error",
    "summarise",
    "ErrorSummary",
    "ReproError",
    "TraceCorruptError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "StudyAbortedError",
    "CheckpointError",
    "EventLogCorruptError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "OverloadedError",
    "UnknownIdError",
    "ServiceUnavailableError",
]


class ReproError(Exception):
    """Base of all repro failure classes.

    ``exit_code`` is what :func:`repro.cli.main` returns when the error
    escapes a study; subclasses override it so each failure class maps to
    a distinct nonzero code.
    """

    exit_code = 2


class TraceCorruptError(ReproError, ValueError):
    """A persisted trace/probe entry failed validation.

    Also a :class:`ValueError` so pre-taxonomy callers catching the
    serializer's original exception keep working.  The self-healing
    :class:`~repro.tracing.store.TraceStore` catches this internally,
    invalidates the entry and falls through to re-tracing.
    """

    exit_code = 3


class WorkerCrashError(ReproError):
    """A study worker died mid-chunk (broken pool, hard exit, crash fault)."""

    exit_code = 4


class ChunkTimeoutError(ReproError):
    """A study chunk overran its per-chunk deadline."""

    exit_code = 5


class StudyAbortedError(ReproError):
    """The study was deliberately stopped mid-run (fault harness or caller)."""

    exit_code = 6


class CheckpointError(ReproError):
    """A checkpoint file could not be written."""

    exit_code = 7


class EventLogCorruptError(ReproError):
    """An event-log segment failed verification beyond its torn tail.

    Raised by ``repro-study events verify`` when a sealed segment is
    damaged or a sequence gap splits the log — damage that replay can only
    answer by dropping the suffix, which deserves a loud exit code rather
    than a silent shorter view.
    """

    exit_code = 13


class DeadlineExceededError(ReproError):
    """A time budget ran out before the work guarded by it finished.

    Raised by :meth:`repro.util.deadline.Deadline.checkpoint` inside the
    probe/trace/convolve stages; the prediction service catches it to
    abandon a stage and fall down the degradation ladder, and the study
    engine's serial chunks convert it into :class:`ChunkTimeoutError`.
    """

    exit_code = 8

    def __init__(self, message: str, *, stage: str | None = None):
        super().__init__(message)
        #: Pipeline stage the budget expired in (``"probe"``, ``"trace"``,
        #: ``"convolve"``, ...), when known.
        self.stage = stage


class CircuitOpenError(ReproError):
    """A backend stage's circuit breaker is open: the call was not made.

    Distinct from a backend *failure* — an open breaker fails fast by
    design, and the service answers from a cheaper rung of the metric
    ladder instead.
    """

    exit_code = 9

    def __init__(self, message: str, *, stage: str | None = None, retry_after: float | None = None):
        super().__init__(message)
        self.stage = stage
        #: Seconds until the breaker's next half-open probe window.
        self.retry_after = retry_after


class OverloadedError(ReproError):
    """The service's bounded admission queue is full (HTTP 429 semantics)."""

    exit_code = 10

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        #: Suggested client back-off before retrying, seconds.
        self.retry_after = retry_after


class UnknownIdError(ReproError, KeyError):
    """A request named an application/machine/metric that does not exist.

    Carries the nearest valid identifiers so the service boundary can
    return a structured 400 (never a traceback).  Also a :class:`KeyError`
    because that is what the underlying registries raise.
    """

    exit_code = 11

    def __init__(
        self,
        kind: str,
        value: object,
        known: tuple[str, ...],
        nearest: tuple[str, ...] = (),
    ):
        hint = f"; nearest: {', '.join(nearest)}" if nearest else ""
        message = (
            f"unknown {kind} {value!r}; known: {', '.join(known)}{hint}"
        )
        super().__init__(message)
        self.kind = kind
        self.value = value
        self.known = known
        self.nearest = nearest

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class ServiceUnavailableError(ReproError):
    """Every rung of the degradation ladder failed (HTTP 503 semantics)."""

    exit_code = 12

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


def signed_error(predicted: float, actual: float) -> float:
    """Equation 2: ``(T' - T) / T * 100`` percent.

    Negative = predicted faster than actual; positive = predicted slower.
    """
    if actual <= 0:
        raise ValueError(f"actual time must be > 0, got {actual!r}")
    if predicted < 0:
        raise ValueError(f"predicted time must be >= 0, got {predicted!r}")
    return (predicted - actual) / actual * 100.0


def absolute_error(predicted: float, actual: float) -> float:
    """Magnitude of the Equation 2 error, percent."""
    return abs(signed_error(predicted, actual))


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate of a set of prediction errors.

    Attributes
    ----------
    mean_abs:
        Average absolute error, percent (the paper's headline statistic).
    std_abs:
        Standard deviation of the absolute errors, percent.
    mean_signed:
        Average signed error (bias), percent.
    count:
        Number of predictions aggregated.
    """

    mean_abs: float
    std_abs: float
    mean_signed: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean_abs:.0f}% +/- {self.std_abs:.0f}% "
            f"(bias {self.mean_signed:+.0f}%, n={self.count})"
        )


def summarise(signed_errors: Iterable[float]) -> ErrorSummary:
    """Summarise a collection of signed Equation-2 errors.

    The standard deviation uses the population convention (ddof=0),
    matching a straight "std of the error column" reading of Table 4.
    """
    arr = np.asarray(list(signed_errors), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise zero errors")
    abs_arr = np.abs(arr)
    return ErrorSummary(
        mean_abs=float(abs_arr.mean()),
        std_abs=float(abs_arr.std()),
        mean_signed=float(arr.mean()),
        count=int(arr.size),
    )
