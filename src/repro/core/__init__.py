"""The paper's primary contribution: metric-based performance prediction.

* :mod:`repro.core.errors` — Equation 2 error statistics.
* :mod:`repro.core.convolver` — the MetaSim Convolver: divides traced
  operation counts by probe-measured rates per basic block, handles
  FP/memory overlap and the optional network term.
* :mod:`repro.core.metrics` — the nine metrics of Table 3 (three simple
  Equation-1 ratios, six convolver configurations) behind one interface.
* :mod:`repro.core.balanced` — the IDC balanced-rating linear combination,
  with equal and regression-optimised weights (paper Section 4).
* :mod:`repro.core.predictor` — a facade tying machines, probes, traces
  and metrics together (the library's main entry point).
* :mod:`repro.core.ranking` — system-ranking utilities (Kendall/Spearman
  agreement between predicted and observed rankings).
"""

from repro.core.errors import (
    CheckpointError,
    ChunkTimeoutError,
    ErrorSummary,
    ReproError,
    StudyAbortedError,
    TraceCorruptError,
    WorkerCrashError,
    absolute_error,
    signed_error,
    summarise,
)
from repro.core.convolver import ConvolvedTime, Convolver, MemoryModel
from repro.core.metrics import (
    ALL_METRICS,
    Metric,
    PredictionContext,
    PredictiveMetric,
    SimpleMetric,
    get_metric,
)
from repro.core.balanced import BalancedRating, optimise_weights
from repro.core.predictor import PerformancePredictor
from repro.core.ranking import rank_agreement, rank_systems

__all__ = [
    "signed_error",
    "absolute_error",
    "summarise",
    "ErrorSummary",
    "ReproError",
    "TraceCorruptError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "StudyAbortedError",
    "CheckpointError",
    "Convolver",
    "ConvolvedTime",
    "MemoryModel",
    "Metric",
    "SimpleMetric",
    "PredictiveMetric",
    "PredictionContext",
    "ALL_METRICS",
    "get_metric",
    "BalancedRating",
    "optimise_weights",
    "PerformancePredictor",
    "rank_systems",
    "rank_agreement",
]
