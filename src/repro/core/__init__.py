"""The paper's primary contribution: metric-based performance prediction.

* :mod:`repro.core.errors` — Equation 2 error statistics.
* :mod:`repro.core.convolver` — the MetaSim Convolver: divides traced
  operation counts by probe-measured rates per basic block, handles
  FP/memory overlap and the optional network term.
* :mod:`repro.core.registry` — the declarative metric registry: every
  metric (Table 3's nine, the balanced rating, user metrics #10+) as a
  :class:`~repro.core.registry.MetricSpec` of ``kind/source`` terms.
* :mod:`repro.core.metrics` — runtime ``Metric`` objects built from
  registry specs (three simple Equation-1 ratios, six convolver
  configurations, the composite balanced rating) behind one interface.
* :mod:`repro.core.balanced` — the IDC balanced-rating linear combination,
  with equal and regression-optimised weights (paper Section 4).
* :mod:`repro.core.predictor` — a facade tying machines, probes, traces
  and metrics together (the library's main entry point).
* :mod:`repro.core.ranking` — system-ranking utilities (Kendall/Spearman
  agreement between predicted and observed rankings).
"""

from repro.core.errors import (
    CheckpointError,
    ChunkTimeoutError,
    ErrorSummary,
    ReproError,
    StudyAbortedError,
    TraceCorruptError,
    WorkerCrashError,
    absolute_error,
    signed_error,
    summarise,
)
from repro.core.convolver import ConvolvedTime, Convolver, MemoryModel
from repro.core.metrics import (
    ALL_METRICS,
    CompositeMetric,
    Metric,
    PredictionContext,
    PredictiveMetric,
    SimpleMetric,
    get_metric,
    resolve_metrics,
)
from repro.core.options import CacheModel, Mode
from repro.core.registry import REGISTRY, MetricRegistry, MetricSpec, Term
from repro.core.balanced import BalancedRating, optimise_weights
from repro.core.predictor import PerformancePredictor
from repro.core.ranking import rank_agreement, rank_systems

__all__ = [
    "signed_error",
    "absolute_error",
    "summarise",
    "ErrorSummary",
    "ReproError",
    "TraceCorruptError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "StudyAbortedError",
    "CheckpointError",
    "Convolver",
    "ConvolvedTime",
    "MemoryModel",
    "Metric",
    "SimpleMetric",
    "PredictiveMetric",
    "CompositeMetric",
    "PredictionContext",
    "ALL_METRICS",
    "get_metric",
    "resolve_metrics",
    "MetricSpec",
    "MetricRegistry",
    "Term",
    "REGISTRY",
    "Mode",
    "CacheModel",
    "BalancedRating",
    "optimise_weights",
    "PerformancePredictor",
    "rank_systems",
    "rank_agreement",
]
