"""High-level prediction facade — the library's main entry point.

:class:`PerformancePredictor` is a thin client of the staged engine
(:class:`~repro.engine.Engine`): it resolves names to models, builds a
:class:`~repro.engine.PointPlan` per query, and lets the engine own the
probe → trace → convolve dataflow.  Metrics resolve through the
declarative registry, so Table 3 numbers, registry names (``"balanced"``,
``"conv+maps"``) and user-registered metrics (#10+) all work.

    >>> from repro import PerformancePredictor
    >>> predictor = PerformancePredictor()
    >>> t = predictor.predict("AVUS-standard", "ARL_Opteron", cpus=64, metric=9)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.apps.model import ApplicationModel
from repro.core.metrics import ALL_METRICS, Metric, PredictionContext, get_metric
from repro.scenarios import BASE_SYSTEM, get_application, get_machine
from repro.machines.spec import MachineSpec
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE

__all__ = ["PerformancePredictor", "Prediction"]


@dataclass(frozen=True)
class Prediction:
    """One prediction with its provenance.

    Attributes
    ----------
    application, system, cpus, metric:
        What was predicted with what.
    predicted_seconds:
        The metric's estimate ``T'(X, Y)``.
    base_seconds:
        The base-system time the prediction was anchored to.
    """

    application: str
    system: str
    cpus: int
    metric: int
    predicted_seconds: float
    base_seconds: float


class PerformancePredictor:
    """Predict application wall-clock times across systems.

    Parameters
    ----------
    base_system:
        Name of the base (tracing + Equation 1 anchor) system; defaults to
        the paper's NAVO p690.
    mode:
        ``"relative"`` (paper) or ``"absolute"`` convolution.
    sample_size:
        MetaSim tracer references per basic block.
    noise:
        Whether base-system "measurements" include run-to-run noise.
    """

    def __init__(
        self,
        base_system: str = BASE_SYSTEM,
        *,
        mode: str = "relative",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        noise: bool = True,
    ):
        # Imported here, not at module top: core is below engine in the
        # layering (engine builds on core.metrics), and the facade is the
        # one core module allowed to reach up to it.
        from repro.engine import Engine

        self._engine = Engine(
            base_system, mode=mode, sample_size=sample_size, noise=noise
        )
        self.base_machine = self._engine.base_machine
        self.mode = self._engine.mode
        self.sample_size = sample_size
        self.noise = noise

    # ------------------------------------------------------------------
    def _resolve_app(self, app: ApplicationModel | str) -> ApplicationModel:
        return get_application(app) if isinstance(app, str) else app

    def _resolve_machine(self, machine: MachineSpec | str) -> MachineSpec:
        return get_machine(machine) if isinstance(machine, str) else machine

    def _plan(self, app, machine, cpus: int, metric):
        from repro.engine import PointPlan

        m = metric if isinstance(metric, Metric) else get_metric(metric)
        return PointPlan(
            app=self._resolve_app(app),
            cpus=cpus,
            target=self._resolve_machine(machine),
            metric=m,
        )

    @property
    def _base_times(self) -> dict[tuple[str, int], float]:
        """The engine's base-time cache (kept for API compatibility)."""
        return self._engine._base_times

    def base_time(self, app: ApplicationModel | str, cpus: int) -> float:
        """Measured (simulated) base-system time ``T(X0, Y)``, cached."""
        return self._engine.base_time(self._resolve_app(app), cpus)

    def context(
        self, app: ApplicationModel | str, machine: MachineSpec | str, cpus: int
    ) -> PredictionContext:
        """Assemble the full prediction context for one run."""
        model = self._resolve_app(app)
        target = self._resolve_machine(machine)
        bundle = self._engine.probe_bundle(model, cpus, target)
        return PredictionContext(
            trace=self._engine.trace(model, cpus),
            target_probes=bundle.target_probes,
            base_probes=bundle.base_probes,
            base_time=bundle.base_time,
            mode=self.mode,
        )

    # ------------------------------------------------------------------
    def predict(
        self,
        app: ApplicationModel | str,
        machine: MachineSpec | str,
        cpus: int,
        metric: "int | str | Metric" = 9,
    ) -> float:
        """Predict ``app``'s wall-clock seconds on ``machine`` at ``cpus``.

        ``metric`` is a registry number (Table 3's 1-9, 0 for the
        balanced rating, 10+ for user metrics), a registry name
        (``"balanced"``, ``"conv+maps+net"``) or a :class:`Metric`.
        """
        return self._engine.run_point(self._plan(app, machine, cpus, metric))

    def predict_detail(
        self,
        app: ApplicationModel | str,
        machine: MachineSpec | str,
        cpus: int,
        metric: "int | str | Metric" = 9,
    ) -> Prediction:
        """Like :meth:`predict` but returns provenance alongside the value."""
        plan = self._plan(app, machine, cpus, metric)
        value = self._engine.run_point(plan)
        return Prediction(
            application=plan.app.label,
            system=plan.target.name,
            cpus=cpus,
            metric=plan.metric.number,
            predicted_seconds=value,
            base_seconds=self._engine.base_time(plan.app, cpus),
        )

    def predict_row(
        self,
        app: ApplicationModel | str,
        machine: MachineSpec | str,
        cpus: int,
        metrics=None,
    ) -> dict[int, float]:
        """Predictions from several metrics for one run, keyed by number.

        The canonical many-metrics path: probe, trace and the convolver's
        rate table are shared across all requested metrics
        (:func:`~repro.core.metrics.predict_all`), and each value is
        bit-identical to the corresponding scalar :meth:`predict` call.
        ``metrics`` defaults to Table 3's nine; any mix of registry
        numbers and names is accepted.
        """
        keys = tuple(ALL_METRICS) if metrics is None else tuple(metrics)
        plan = self._plan(app, machine, cpus, next(iter(ALL_METRICS.values())))
        return self._engine.run_row(plan, keys)

    def predict_all_metrics(
        self, app: ApplicationModel | str, machine: MachineSpec | str, cpus: int
    ) -> dict[int, float]:
        """Deprecated alias of :meth:`predict_row` (all Table 3 metrics).

        .. deprecated:: 1.0
            The twin entry points ``core.metrics.predict_all`` and this
            method drifted apart once each hand-rolled its own pipeline;
            :meth:`predict_row` is the single registry-driven path.
        """
        warnings.warn(
            "PerformancePredictor.predict_all_metrics is deprecated; "
            "use predict_row (same values, shared rate-table pipeline)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.predict_row(app, machine, cpus)
