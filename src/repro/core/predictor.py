"""High-level prediction facade — the library's main entry point.

:class:`PerformancePredictor` wires the whole pipeline together: it probes
machines (cached), traces applications on the base system (cached), runs
the base system's "real" execution for Equation 1's ``T(X0, Y)``, and
applies any Table 3 metric.

    >>> from repro import PerformancePredictor
    >>> predictor = PerformancePredictor()
    >>> t = predictor.predict("AVUS-standard", "ARL_Opteron", cpus=64, metric=9)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.execution import GroundTruthExecutor
from repro.apps.model import ApplicationModel
from repro.apps.suite import get_application
from repro.core.metrics import ALL_METRICS, Metric, PredictionContext, get_metric
from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.machines.spec import MachineSpec
from repro.probes.suite import probe_machine
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE, trace_application

__all__ = ["PerformancePredictor", "Prediction"]


@dataclass(frozen=True)
class Prediction:
    """One prediction with its provenance.

    Attributes
    ----------
    application, system, cpus, metric:
        What was predicted with what.
    predicted_seconds:
        The metric's estimate ``T'(X, Y)``.
    base_seconds:
        The base-system time the prediction was anchored to.
    """

    application: str
    system: str
    cpus: int
    metric: int
    predicted_seconds: float
    base_seconds: float


class PerformancePredictor:
    """Predict application wall-clock times across systems.

    Parameters
    ----------
    base_system:
        Name of the base (tracing + Equation 1 anchor) system; defaults to
        the paper's NAVO p690.
    mode:
        ``"relative"`` (paper) or ``"absolute"`` convolution.
    sample_size:
        MetaSim tracer references per basic block.
    noise:
        Whether base-system "measurements" include run-to-run noise.
    """

    def __init__(
        self,
        base_system: str = BASE_SYSTEM,
        *,
        mode: str = "relative",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        noise: bool = True,
    ):
        self.base_machine = get_machine(base_system)
        self.mode = mode
        self.sample_size = sample_size
        self.noise = noise
        self._base_times: dict[tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    def _resolve_app(self, app: ApplicationModel | str) -> ApplicationModel:
        return get_application(app) if isinstance(app, str) else app

    def _resolve_machine(self, machine: MachineSpec | str) -> MachineSpec:
        return get_machine(machine) if isinstance(machine, str) else machine

    def base_time(self, app: ApplicationModel | str, cpus: int) -> float:
        """Measured (simulated) base-system time ``T(X0, Y)``, cached."""
        model = self._resolve_app(app)
        key = (model.label, cpus)
        if key not in self._base_times:
            executor = GroundTruthExecutor(self.base_machine, noise=self.noise)
            self._base_times[key] = executor.run(model, cpus).total_seconds
        return self._base_times[key]

    def context(
        self, app: ApplicationModel | str, machine: MachineSpec | str, cpus: int
    ) -> PredictionContext:
        """Assemble the full prediction context for one run."""
        model = self._resolve_app(app)
        target = self._resolve_machine(machine)
        trace = trace_application(model, cpus, self.base_machine, self.sample_size)
        return PredictionContext(
            trace=trace,
            target_probes=probe_machine(target),
            base_probes=probe_machine(self.base_machine),
            base_time=self.base_time(model, cpus),
            mode=self.mode,
        )

    # ------------------------------------------------------------------
    def predict(
        self,
        app: ApplicationModel | str,
        machine: MachineSpec | str,
        cpus: int,
        metric: int | Metric = 9,
    ) -> float:
        """Predict ``app``'s wall-clock seconds on ``machine`` at ``cpus``.

        ``metric`` is a Table 3 number (1-9) or a :class:`Metric` instance.
        """
        m = get_metric(metric) if isinstance(metric, int) else metric
        return m.predict(self.context(app, machine, cpus))

    def predict_detail(
        self,
        app: ApplicationModel | str,
        machine: MachineSpec | str,
        cpus: int,
        metric: int | Metric = 9,
    ) -> Prediction:
        """Like :meth:`predict` but returns provenance alongside the value."""
        model = self._resolve_app(app)
        target = self._resolve_machine(machine)
        m = get_metric(metric) if isinstance(metric, int) else metric
        value = m.predict(self.context(model, target, cpus))
        return Prediction(
            application=model.label,
            system=target.name,
            cpus=cpus,
            metric=m.number,
            predicted_seconds=value,
            base_seconds=self.base_time(model, cpus),
        )

    def predict_all_metrics(
        self, app: ApplicationModel | str, machine: MachineSpec | str, cpus: int
    ) -> dict[int, float]:
        """Predictions from all nine metrics for one run."""
        ctx = self.context(app, machine, cpus)
        return {num: metric.predict(ctx) for num, metric in ALL_METRICS.items()}
