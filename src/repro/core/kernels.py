"""Precompiled numeric kernels shared by the executor and the convolver.

Each kernel exists as two byte-identical twins: a NumPy ufunc chain
(always available) and an explicit-loop form that numba can ``njit``
when ``REPRO_JIT=numba`` is set (see :mod:`repro.util.jit`).  Both twins
perform the same IEEE-754 operations in the same order — per-level
accumulation in level order, the overlap combine as
``(t_fp + t_mem) - overlap * min(t_fp, t_mem)`` — so backend selection
can never move a bit of any prediction; ``scripts/check_jit.py`` asserts
that in CI.

Kernel selection is resolved lazily on first call (not at import), so a
test can toggle the environment and :func:`refresh` without reimports.
"""

from __future__ import annotations

import numpy as np

from repro.util import jit

__all__ = ["accumulate_time_per_byte", "combine_overlap", "refresh"]


# ---------------------------------------------------------------------------
# per-level time-per-byte accumulation (the executor's memory inner loop)
# ---------------------------------------------------------------------------


def _accumulate_time_per_byte_numpy(
    residency: np.ndarray, level_bw: np.ndarray
) -> np.ndarray:
    # residency: (runs, blocks, levels); level_bw: (combos, blocks, levels)
    # -> (combos, runs, blocks).  Accumulates in level order starting from
    # an exact 0.0, like the scalar hierarchy walk.
    out = np.zeros((level_bw.shape[0], residency.shape[0], residency.shape[1]))
    for lvl in range(level_bw.shape[2]):
        out = out + residency[None, :, :, lvl] / level_bw[:, None, :, lvl]
    return out


def _accumulate_time_per_byte_loops(
    residency: np.ndarray, level_bw: np.ndarray
) -> np.ndarray:
    combos, blocks, levels = level_bw.shape
    runs = residency.shape[0]
    out = np.zeros((combos, runs, blocks))
    for c in range(combos):
        for r in range(runs):
            for b in range(blocks):
                acc = 0.0
                for lvl in range(levels):
                    acc = acc + residency[r, b, lvl] / level_bw[c, b, lvl]
                out[c, r, b] = acc
    return out


# ---------------------------------------------------------------------------
# FP/memory overlap combine (shared by executor and convolver)
# ---------------------------------------------------------------------------


def _combine_overlap_numpy(
    t_fp: np.ndarray, t_mem: np.ndarray, overlap: float
) -> np.ndarray:
    return t_fp + t_mem - overlap * np.minimum(t_fp, t_mem)


def _combine_overlap_loops(
    t_fp: np.ndarray, t_mem: np.ndarray, overlap: float
) -> np.ndarray:
    flat_fp = t_fp.ravel()
    flat_mem = t_mem.ravel()
    out = np.empty(flat_fp.shape[0])
    for i in range(flat_fp.shape[0]):
        out[i] = flat_fp[i] + flat_mem[i] - overlap * min(flat_fp[i], flat_mem[i])
    return out.reshape(t_fp.shape)


# ---------------------------------------------------------------------------
# lazy backend resolution
# ---------------------------------------------------------------------------

_compiled: dict = {}


def _kernel(name: str, loops_impl, numpy_impl):
    fn = _compiled.get(name)
    if fn is None:
        fn = jit.compile_kernel(loops_impl, numpy_impl)
        _compiled[name] = fn
    return fn


def accumulate_time_per_byte(residency: np.ndarray, level_bw: np.ndarray) -> np.ndarray:
    """``(combos, runs, blocks)`` seconds-per-byte, accumulated per level."""
    return _kernel(
        "accumulate_time_per_byte",
        _accumulate_time_per_byte_loops,
        _accumulate_time_per_byte_numpy,
    )(residency, level_bw)


def combine_overlap(t_fp: np.ndarray, t_mem: np.ndarray, overlap: float) -> np.ndarray:
    """Combined seconds after hiding ``overlap`` of the smaller term."""
    return _kernel(
        "combine_overlap", _combine_overlap_loops, _combine_overlap_numpy
    )(t_fp, t_mem, float(overlap))


def refresh() -> None:
    """Drop compiled kernels and the backend decision (test hook)."""
    _compiled.clear()
    jit.refresh()
