"""MetaSim Convolver analogue.

"Operation counts, once determined by tracing, are divided by corresponding
operation rates ... to yield an execution time for the current basic block
per operation type.  Execution time is subsequently 'predicted' by summing
the estimated execution time for all basic blocks and carefully taking into
account the overlap of the different operation types."  (paper Section 3)

The convolver consumes only an :class:`~repro.tracing.trace.ApplicationTrace`
and a :class:`~repro.probes.results.MachineProbes` — never a machine spec —
so each metric's blindness is structural:

=============  =====================================================
MemoryModel    memory rate source
=============  =====================================================
``NONE``       memory ignored (Metric #4)
``STREAM``     every reference at STREAM triad (Metric #5)
``STREAM_GUPS``strided at STREAM, random at GUPS (Metric #6)
``MAPS``       MAPS curves looked up at the traced working set (#7, #8)
``MAPS_DEP``   ENHANCED MAPS dependent curves blended by the static
               dependency weight (Metric #9)
=============  =====================================================

The network term (Metrics #8/#9) prices the MPIDTRACE events with
NETBENCH's fitted latency/bandwidth and measured all_reduce table.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.core.kernels import combine_overlap
from repro.network.model import CollectiveKind
from repro.probes.results import MachineProbes
from repro.tracing.trace import ApplicationTrace, BlockArrays, BlockTrace, CommRecord
from repro.util.validation import check_fraction

__all__ = [
    "MemoryModel",
    "Convolver",
    "ConvolvedTime",
    "BlockPrediction",
    "RateTable",
]

#: Fraction of min(FP, memory) time the convolver assumes is hidden by
#: overlap.  A single number for all machines — the predictor cannot know
#: each target's true overlap behaviour, which varies (another honest gap).
DEFAULT_OVERLAP = 0.75


class MemoryModel(enum.Enum):
    """How the convolver prices memory references."""

    NONE = "none"
    STREAM = "stream"
    STREAM_GUPS = "stream+gups"
    MAPS = "maps"
    MAPS_DEP = "maps+dep"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BlockPrediction:
    """Predicted per-timestep time of one basic block.

    Attributes
    ----------
    name:
        Block name.
    fp_seconds, mem_seconds:
        Component estimates before overlap.
    seconds:
        Combined estimate.
    """

    name: str
    fp_seconds: float
    mem_seconds: float
    seconds: float


@dataclass(frozen=True)
class ConvolvedTime:
    """Full convolver output for one (trace, machine) pair.

    Attributes
    ----------
    machine:
        Probed target system.
    application, cpus:
        Identity of the trace.
    compute_seconds:
        Sum of block estimates over all timesteps.
    comm_seconds:
        Network term (zero unless the network model is enabled).
    blocks:
        Per-block breakdown (per timestep).
    """

    machine: str
    application: str
    cpus: int
    compute_seconds: float
    comm_seconds: float
    blocks: tuple[BlockPrediction, ...]

    @property
    def total_seconds(self) -> float:
        """Predicted wall-clock seconds."""
        return self.compute_seconds + self.comm_seconds


@dataclass(frozen=True)
class _TraceArrays:
    """Block-axis views of a trace, extracted once per batch call.

    Every machine in a batch shares the same trace, so pulling the block
    scalars into contiguous arrays up front leaves only element-wise NumPy
    ops in the per-machine loop.
    """

    fp_ops: np.ndarray
    total_bytes: np.ndarray
    strided_bytes: np.ndarray
    random_bytes: np.ndarray
    working_set: np.ndarray
    dependency: np.ndarray

    @classmethod
    def of(cls, trace: ApplicationTrace) -> "_TraceArrays":
        # Fast path: both ApplicationTrace and the store's MappedTrace
        # expose cached block-axis arrays (for a mapped trace these are
        # zero-copy memmap views), so no per-block Python objects are
        # touched here.  ``b.bytes = (loads + stores) * 8.0`` and
        # ``strided = unit + short`` performed array-wise are the same
        # IEEE-754 operations per element as the old scalar loop, so no
        # prediction moves a bit.
        ba = getattr(trace, "block_arrays", None)
        if ba is None:  # duck-typed stand-in without the cache
            ba = BlockArrays.of_blocks(trace.blocks)
        total_bytes = (ba.loads + ba.stores) * 8.0
        return cls(
            fp_ops=ba.fp_ops,
            total_bytes=total_bytes,
            strided_bytes=total_bytes * (ba.unit + ba.short),
            random_bytes=total_bytes * ba.random,
            working_set=ba.working_set,
            dependency=ba.dependency_weight,
        )


class RateTable:
    """Shared rate tensors of one trace against a list of machines.

    The tensorised pipeline's working set: the trace's (blocks x
    categories) operation matrix (:class:`_TraceArrays`) plus, per rate
    category, a machines-axis (or ``(machines, blocks)`` for working-set
    dependent MAPS curves) rate tensor.  Building one table per study row
    and handing it to every metric's convolver means the expensive parts —
    block extraction, the four MAPS curve interpolations per machine, the
    per-event network pricing — happen once per row instead of once per
    (metric, machine) cell.

    All tensors are lazy: a metric mix without MAPS models never
    interpolates a curve, and the network term only prices when some
    metric carries the NETBENCH component.
    """

    def __init__(self, trace: ApplicationTrace, probes_list: list[MachineProbes]):
        self.trace = trace
        self.probes_list = list(probes_list)
        self.arrays = _TraceArrays.of(trace)
        self.rmax = np.array([p.hpl.rmax_flops for p in self.probes_list])
        self._stream_bw: np.ndarray | None = None
        self._gups_bw: np.ndarray | None = None
        self._maps_bw: dict[str, np.ndarray] = {}
        self._log_ws: np.ndarray | None = None
        self._comm: np.ndarray | None = None

    @property
    def stream_bw(self) -> np.ndarray:
        """(machines,) STREAM bandwidths."""
        if self._stream_bw is None:
            self._stream_bw = np.array(
                [p.stream.bandwidth for p in self.probes_list]
            )
        return self._stream_bw

    @property
    def gups_bw(self) -> np.ndarray:
        """(machines,) GUPS random bandwidths."""
        if self._gups_bw is None:
            self._gups_bw = np.array(
                [p.gups.random_bandwidth for p in self.probes_list]
            )
        return self._gups_bw

    def maps_bw(self, kind: str) -> np.ndarray:
        """(machines, blocks) MAPS bandwidths of ``kind`` at each block's WS."""
        cached = self._maps_bw.get(kind)
        if cached is None:
            if self._log_ws is None:
                # One log per row, shared by every (machine, kind) lookup.
                self._log_ws = np.log(self.arrays.working_set)
            log_ws = self._log_ws
            cached = np.vstack(
                [p.maps.curve(kind).lookup_many_log(log_ws) for p in self.probes_list]
            )
            self._maps_bw[kind] = cached
        return cached

    def comm_seconds(self) -> np.ndarray:
        """(machines,) per-timestep network seconds for the traced events."""
        if self._comm is None:
            self._comm = np.array(
                [
                    _comm_seconds(self.trace.comm, p, self.trace.cpus)
                    for p in self.probes_list
                ]
            )
        return self._comm


def _comm_seconds(
    records: tuple[CommRecord, ...], probes: MachineProbes, cpus: int
) -> float:
    """Price one timestep of traced MPI events with NETBENCH results."""
    net = probes.netbench
    time = 0.0
    for rec in records:
        if rec.is_p2p:
            per = net.point_to_point(rec.size_bytes) * rec.neighbors
        elif rec.kind is CollectiveKind.ALLREDUCE:
            per = net.allreduce_time(cpus, rec.size_bytes)
        elif rec.kind is CollectiveKind.BARRIER:
            per = net.allreduce_time(cpus, 8.0) / 2.0
        elif rec.kind is CollectiveKind.BROADCAST:
            depth = math.ceil(math.log2(max(cpus, 2)))
            per = depth * net.point_to_point(rec.size_bytes)
        elif rec.kind is CollectiveKind.ALLTOALL:
            per = (cpus - 1) * net.point_to_point(rec.size_bytes)
        else:
            raise ValueError(f"unhandled comm kind {rec.kind!r}")
        time += rec.count * per
    return time


class Convolver:
    """Convolve application traces with machine probe results.

    Parameters
    ----------
    memory_model:
        Memory-rate source (see module docstring).
    network:
        Include the NETBENCH communication term.
    overlap:
        Assumed fraction of min(FP, memory) hidden by overlap.
    """

    def __init__(
        self,
        memory_model: MemoryModel = MemoryModel.MAPS,
        *,
        network: bool = False,
        overlap: float = DEFAULT_OVERLAP,
    ):
        self.memory_model = MemoryModel(memory_model)
        self.network = bool(network)
        self.overlap = check_fraction("overlap", overlap)

    # ------------------------------------------------------------------
    def _mem_seconds(self, block: BlockTrace, probes: MachineProbes) -> float:
        """Price one timestep of ``block``'s memory traffic."""
        model = self.memory_model
        if model is MemoryModel.NONE:
            return 0.0
        total_bytes = block.bytes
        if model is MemoryModel.STREAM:
            return total_bytes / probes.stream.bandwidth

        strided_bytes = total_bytes * block.stride.strided
        random_bytes = total_bytes * block.stride.random
        if model is MemoryModel.STREAM_GUPS:
            return (
                strided_bytes / probes.stream.bandwidth
                + random_bytes / probes.gups.random_bandwidth
            )

        ws = block.working_set
        maps = probes.maps
        if model is MemoryModel.MAPS:
            return strided_bytes / maps.unit.lookup(ws) + random_bytes / maps.random.lookup(ws)

        if model is MemoryModel.MAPS_DEP:
            w = block.dependency_weight
            t = strided_bytes * (1.0 - w) / maps.unit.lookup(ws)
            t += random_bytes * (1.0 - w) / maps.random.lookup(ws)
            if w > 0.0:
                t += strided_bytes * w / maps.unit_dep.lookup(ws)
                t += random_bytes * w / maps.random_dep.lookup(ws)
            return t
        raise AssertionError(f"unhandled memory model {model!r}")

    def predict_block(self, block: BlockTrace, probes: MachineProbes) -> BlockPrediction:
        """Predict one timestep of ``block`` on the probed machine."""
        t_fp = block.fp_ops / probes.hpl.rmax_flops
        t_mem = self._mem_seconds(block, probes)
        hidden = self.overlap * min(t_fp, t_mem)
        return BlockPrediction(
            name=block.name,
            fp_seconds=t_fp,
            mem_seconds=t_mem,
            seconds=t_fp + t_mem - hidden,
        )

    # ------------------------------------------------------------------
    def _comm_seconds(
        self, records: tuple[CommRecord, ...], probes: MachineProbes, cpus: int
    ) -> float:
        """Price one timestep of traced MPI events with NETBENCH results."""
        return _comm_seconds(records, probes, cpus)

    # ------------------------------------------------------------------
    def _mem_seconds_arrays(
        self, arrays: "_TraceArrays", probes: MachineProbes
    ) -> np.ndarray:
        """Per-timestep memory seconds of every block, as one array pass.

        Element-for-element identical to :meth:`_mem_seconds` (the same
        operations in the same order, applied across the block axis).
        """
        model = self.memory_model
        if model is MemoryModel.NONE:
            return np.zeros(arrays.total_bytes.shape[0])
        total_bytes = arrays.total_bytes
        if model is MemoryModel.STREAM:
            return total_bytes / probes.stream.bandwidth

        strided_bytes = arrays.strided_bytes
        random_bytes = arrays.random_bytes
        if model is MemoryModel.STREAM_GUPS:
            return (
                strided_bytes / probes.stream.bandwidth
                + random_bytes / probes.gups.random_bandwidth
            )

        ws = arrays.working_set
        maps = probes.maps
        unit_bw = maps.unit.lookup_many(ws)
        random_bw = maps.random.lookup_many(ws)
        if model is MemoryModel.MAPS:
            return strided_bytes / unit_bw + random_bytes / random_bw

        if model is MemoryModel.MAPS_DEP:
            w = arrays.dependency
            t = strided_bytes * (1.0 - w) / unit_bw
            t = t + random_bytes * (1.0 - w) / random_bw
            # Dependent terms vanish exactly where w == 0 (adding 0.0 is
            # exact), matching the scalar path's conditional.
            t = t + strided_bytes * w / maps.unit_dep.lookup_many(ws)
            t = t + random_bytes * w / maps.random_dep.lookup_many(ws)
            return t
        raise AssertionError(f"unhandled memory model {model!r}")

    def _batch_core(self, trace: ApplicationTrace, probes_list: list[MachineProbes]):
        """Yield ``(probes, t_fp, t_mem, seconds, compute, comm)`` per machine.

        Block arrays are extracted from the trace once and reused for every
        machine; each machine then costs only element-wise NumPy ops.
        """
        arrays = _TraceArrays.of(trace)
        for probes in probes_list:
            t_fp = arrays.fp_ops / probes.hpl.rmax_flops
            t_mem = self._mem_seconds_arrays(arrays, probes)
            seconds = combine_overlap(t_fp, t_mem, self.overlap)
            # Left-fold accumulation: np.sum is sequential below NumPy's
            # pairwise block size (128), matching the scalar sum() order.
            compute = float(np.sum(seconds)) * trace.timesteps
            comm = 0.0
            if self.network:
                comm = self._comm_seconds(trace.comm, probes, trace.cpus) * trace.timesteps
            yield probes, t_fp, t_mem, seconds, compute, comm

    def predict_batch(
        self, trace: ApplicationTrace, probes_list: list[MachineProbes]
    ) -> list[ConvolvedTime]:
        """Convolve ``trace`` with several probed machines at once.

        All blocks of a machine are priced in one NumPy pass (FP, memory,
        overlap as block-axis arrays), so sweeps and the study runner stop
        re-looping scalar block math.  Results are bit-identical to calling
        :meth:`predict` per machine.
        """
        # block_names avoids materialising a mapped trace's block objects
        names = getattr(trace, "block_names", None) or [b.name for b in trace.blocks]
        out: list[ConvolvedTime] = []
        for probes, t_fp, t_mem, seconds, compute, comm in self._batch_core(
            trace, probes_list
        ):
            blocks = tuple(
                BlockPrediction(
                    name=name,
                    fp_seconds=float(fp),
                    mem_seconds=float(mem),
                    seconds=float(sec),
                )
                for name, fp, mem, sec in zip(names, t_fp, t_mem, seconds)
            )
            out.append(
                ConvolvedTime(
                    machine=probes.machine,
                    application=trace.application,
                    cpus=trace.cpus,
                    compute_seconds=compute,
                    comm_seconds=comm,
                    blocks=blocks,
                )
            )
        return out

    # ------------------------------------------------------------------
    def _mem_seconds_matrix(self, rates: RateTable) -> np.ndarray:
        """(machines, blocks) memory seconds — the 2-D form of
        :meth:`_mem_seconds_arrays` (same per-element operation order)."""
        model = self.memory_model
        arrays = rates.arrays
        n_machines = len(rates.probes_list)
        if model is MemoryModel.NONE:
            return np.zeros((n_machines, arrays.total_bytes.shape[0]))
        if model is MemoryModel.STREAM:
            return arrays.total_bytes[None, :] / rates.stream_bw[:, None]

        strided = arrays.strided_bytes[None, :]
        random = arrays.random_bytes[None, :]
        if model is MemoryModel.STREAM_GUPS:
            return (
                strided / rates.stream_bw[:, None]
                + random / rates.gups_bw[:, None]
            )

        unit_bw = rates.maps_bw("unit")
        random_bw = rates.maps_bw("random")
        if model is MemoryModel.MAPS:
            return strided / unit_bw + random / random_bw

        if model is MemoryModel.MAPS_DEP:
            w = rates.arrays.dependency[None, :]
            t = strided * (1.0 - w) / unit_bw
            t = t + random * (1.0 - w) / random_bw
            t = t + strided * w / rates.maps_bw("unit_dep")
            t = t + random * w / rates.maps_bw("random_dep")
            return t
        raise AssertionError(f"unhandled memory model {model!r}")

    def total_seconds_matrix(self, rates: RateTable) -> np.ndarray:
        """Predicted wall-clock seconds for every machine of ``rates``.

        The whole machines x blocks sheet is priced in one 2-D pass;
        element ``m`` is bit-identical to
        ``predict(trace, rates.probes_list[m]).total_seconds`` (the same
        elementwise operations in the same order, with row sums reducing
        sequentially like the 1-D path).
        """
        arrays = rates.arrays
        t_fp = arrays.fp_ops[None, :] / rates.rmax[:, None]
        t_mem = self._mem_seconds_matrix(rates)
        seconds = combine_overlap(t_fp, t_mem, self.overlap)
        compute = np.sum(seconds, axis=1) * rates.trace.timesteps
        if not self.network:
            return compute + 0.0
        comm = rates.comm_seconds() * rates.trace.timesteps
        return compute + comm

    def total_seconds_batch(
        self, trace: ApplicationTrace, probes_list: list[MachineProbes]
    ) -> list[float]:
        """Just the predicted wall-clock seconds per machine.

        Identical numbers to ``[predict(trace, p).total_seconds ...]`` but
        skips building the per-block breakdown dataclasses — the study
        runner's inner loop only ever needs the totals.
        """
        totals = self.total_seconds_matrix(RateTable(trace, list(probes_list)))
        return [float(t) for t in totals]

    def predict(self, trace: ApplicationTrace, probes: MachineProbes) -> ConvolvedTime:
        """Predict the traced application's wall-clock time on ``probes``' machine."""
        return self.predict_batch(trace, [probes])[0]
