"""IDC balanced-rating style linear combinations of simple metrics.

Paper Section 4: the Balanced Rating normalises each of three categories
(processor = HPL, memory = STREAM, interconnect = all_reduce) to a 0-100
score and combines them with fixed weights; the paper then uses regression
to find error-minimising weights (5% / 50% / 45%) and shows even those
barely beat GUPS alone — the motivation for application-specific weighting.

Predictions use Equation 1 with the composite score as the rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np
from scipy import optimize

from repro.probes.results import MachineProbes

__all__ = ["BalancedRating", "optimise_weights", "CATEGORY_NAMES"]

#: The three IDC categories and the probe rate backing each.
CATEGORY_NAMES: tuple[str, str, str] = ("hpl", "stream", "allreduce")


def _category_rates(probes: MachineProbes) -> np.ndarray:
    """Raw higher-is-better rates for (hpl, stream, all_reduce)."""
    return np.array(
        [
            probes.hpl.rmax_flops,
            probes.stream.bandwidth,
            probes.netbench.allreduce_rate,
        ]
    )


@dataclass(frozen=True)
class BalancedRating:
    """A weighted composite of normalised simple-benchmark scores.

    Parameters
    ----------
    probes_by_system:
        Probe suites of every system participating in the normalisation
        (scores are relative to the best system per category, as IDC's
        0-100 scheme is).
    weights:
        Category weights for (hpl, stream, allreduce); need not sum to 1
        (they are renormalised).
    """

    probes_by_system: Mapping[str, MachineProbes]
    weights: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)

    def __post_init__(self) -> None:
        if not self.probes_by_system:
            raise ValueError("need at least one probed system")
        w = np.asarray(self.weights, dtype=float)
        if w.shape != (3,) or np.any(w < 0) or w.sum() <= 0:
            raise ValueError(f"weights must be 3 non-negative values, got {self.weights}")

    def _score_table(self) -> dict[str, np.ndarray]:
        rates = {name: _category_rates(p) for name, p in self.probes_by_system.items()}
        best = np.max(np.stack(list(rates.values())), axis=0)
        return {name: 100.0 * r / best for name, r in rates.items()}

    def score(self, system: str) -> float:
        """Composite 0-100 score of ``system``."""
        scores = self._score_table()
        if system not in scores:
            raise KeyError(f"system {system!r} was not probed")
        w = np.asarray(self.weights, dtype=float)
        w = w / w.sum()
        return float(scores[system] @ w)

    def predict(self, system: str, base_system: str, base_time: float) -> float:
        """Equation-1 prediction using the composite score as the rate."""
        if base_time <= 0:
            raise ValueError(f"base_time must be > 0, got {base_time!r}")
        return self.score(base_system) / self.score(system) * base_time


def optimise_weights(
    probes_by_system: Mapping[str, MachineProbes],
    observations: Sequence[tuple[str, str, float, float]],
) -> tuple[float, float, float]:
    """Find the category weights minimising mean absolute prediction error.

    Parameters
    ----------
    probes_by_system:
        Probe suites of all systems appearing in ``observations``.
    observations:
        Tuples ``(target_system, base_system, base_time, actual_time)`` —
        one per observed application execution.

    Returns
    -------
    tuple
        Normalised (hpl, stream, allreduce) weights.
    """
    if not observations:
        raise ValueError("need at least one observation to fit weights")

    def mean_abs_error(raw: np.ndarray) -> float:
        w = np.abs(raw)
        if w.sum() <= 0:
            return 1e9
        rating = BalancedRating(probes_by_system, tuple(w / w.sum()))
        errs = []
        for target, base, base_time, actual in observations:
            pred = rating.predict(target, base, base_time)
            errs.append(abs(pred - actual) / actual)
        return 100.0 * float(np.mean(errs))

    result = optimize.minimize(
        mean_abs_error,
        x0=np.array([1 / 3, 1 / 3, 1 / 3]),
        method="Nelder-Mead",
        options={"xatol": 1e-4, "fatol": 1e-4, "maxiter": 2000},
    )
    w = np.abs(result.x)
    w = w / w.sum()
    return (float(w[0]), float(w[1]), float(w[2]))
