"""Plain-text table rendering for study output.

The study runner and every bench print their results as aligned ASCII tables
mirroring the paper's Tables 4/5 and appendix Tables 6-10.  Rendering is kept
dependency-free so benches can run in any environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "render_table"]


def _cell(value: object, fmt: str | None) -> str:
    if value is None:
        return ""
    if fmt is not None and isinstance(value, (int, float)):
        return format(value, fmt)
    return str(value)


@dataclass
class Table:
    """A titled grid of cells with per-column numeric formats.

    Attributes
    ----------
    title:
        Heading printed above the grid.
    columns:
        Column header labels.
    rows:
        Row cell values; ragged rows are padded with blanks.
    formats:
        Optional per-column format specs (e.g. ``'.1f'``); ``None`` entries
        fall back to ``str``.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    formats: Sequence[str | None] | None = None

    def add_row(self, *cells: object) -> None:
        """Append one row of cells."""
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        return render_table(self)

    def to_csv(self) -> str:
        """Render the table as CSV (header row first)."""
        fmts = self._column_formats()
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            cells = [_cell(v, fmts[i] if i < len(fmts) else None) for i, v in enumerate(row)]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def _column_formats(self) -> list[str | None]:
        if self.formats is None:
            return [None] * len(self.columns)
        return list(self.formats)


def render_table(table: Table) -> str:
    """Render ``table`` with a title, header rule and column alignment.

    Numeric-formatted columns are right-aligned, text columns left-aligned.
    """
    fmts = table._column_formats()
    ncols = len(table.columns)
    grid: list[list[str]] = [[str(c) for c in table.columns]]
    for row in table.rows:
        padded = list(row) + [None] * (ncols - len(row))
        grid.append([_cell(v, fmts[i] if i < len(fmts) else None) for i, v in enumerate(padded[:ncols])])

    widths = [max(len(r[i]) for r in grid) for i in range(ncols)]
    right = [fmts[i] is not None if i < len(fmts) else False for i in range(ncols)]

    def fmt_row(cells: list[str]) -> str:
        out = []
        for i, text in enumerate(cells):
            out.append(text.rjust(widths[i]) if right[i] else text.ljust(widths[i]))
        return "  ".join(out).rstrip()

    rule = "-" * (sum(widths) + 2 * (ncols - 1))
    lines = [table.title, "=" * len(table.title), fmt_row(grid[0]), rule]
    lines.extend(fmt_row(r) for r in grid[1:])
    return "\n".join(lines) + "\n"
