"""Per-request time budgets with cooperative checkpoints.

A :class:`Deadline` is created once at a boundary (a service request, a
serial study chunk) and threaded *down* through the pipeline stages —
probe, trace, convolve — each of which calls :meth:`Deadline.checkpoint`
at its natural loop points (per benchmark, per basic block, per matrix
pass).  When the budget is spent the checkpoint raises
:class:`~repro.core.errors.DeadlineExceededError` naming the stage, so the
caller abandons the work instead of finishing it late.

The clock is injectable (a :class:`~repro.util.clock.Clock` or any
zero-argument callable returning monotonic seconds), which is what makes
deadline behaviour *testable*: chaos tests and the simulation harness
drive a virtual clock forward deterministically instead of sleeping.

:meth:`Deadline.sub` carves a stage-local budget out of the request
budget — the child can expire early (capping a single slow stage) but can
never outlive its parent, so stage budgets compose without arithmetic at
the call sites.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.errors import DeadlineExceededError
from repro.util.clock import Clock, as_clock

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock time budget.

    Parameters
    ----------
    budget_seconds:
        Seconds allowed from construction; ``math.inf`` means unbounded
        (every check passes, so callers need no None-guards).
    clock:
        Monotonic time source — a :class:`~repro.util.clock.Clock` or a
        bare callable; injectable for deterministic tests (defaults to
        the system clock).
    stage:
        Optional label baked into expiry errors (a :meth:`sub` child
        defaults to its own stage name).
    """

    __slots__ = ("budget", "stage", "_clock", "_start", "_parent")

    def __init__(
        self,
        budget_seconds: float = math.inf,
        *,
        clock: "Clock | Callable[[], float] | None" = None,
        stage: str | None = None,
        _parent: "Deadline | None" = None,
    ):
        if budget_seconds < 0:
            raise ValueError(f"budget_seconds must be >= 0, got {budget_seconds!r}")
        self.budget = float(budget_seconds)
        self.stage = stage
        self._clock = as_clock(clock)
        self._start = self._clock.monotonic()
        self._parent = _parent

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since this deadline was created."""
        return self._clock.monotonic() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (never negative; inf if unbounded).

        A child deadline's remaining time is additionally capped by every
        ancestor's, so a stage budget can never outlive its request.
        """
        left = self.budget - self.elapsed()
        if self._parent is not None:
            left = min(left, self._parent.remaining())
        return max(0.0, left)

    def expired(self) -> bool:
        """Whether the budget (or any ancestor's) is spent."""
        return self.remaining() <= 0.0

    def checkpoint(self, stage: str | None = None) -> None:
        """Abandon-point: raise if the budget is spent, else return.

        Stages call this at loop boundaries; the raised
        :class:`~repro.core.errors.DeadlineExceededError` names the stage
        so breakers and logs can attribute the overrun.
        """
        if self.expired():
            label = stage or self.stage or "work"
            raise DeadlineExceededError(
                f"deadline exceeded in stage {label!r}: "
                f"budget {self.budget:.3f}s spent",
                stage=label,
            )

    def sub(self, budget_seconds: float, *, stage: str | None = None) -> "Deadline":
        """A stage-local child budget, capped by this deadline's remainder."""
        return Deadline(
            min(budget_seconds, self.remaining()),
            clock=self._clock,
            stage=stage,
            _parent=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stage = f" stage={self.stage!r}" if self.stage else ""
        return f"<Deadline{stage} remaining={self.remaining():.3f}s>"
