"""Crash-safe file I/O primitives.

Everything the project persists — trace/probe archives, study checkpoints,
bench reports — goes through :func:`write_atomic`: readers either see the
previous complete file or the new complete file, never a torn write, even
when the writer is killed mid-write or several processes race on the same
path.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["write_atomic", "append_line_durable"]


def write_atomic(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in ``path``'s directory so the final rename stays
    on one filesystem and is atomic; a crash at any point leaves either
    the old content or the new, and the temp file is removed on failure.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def append_line_durable(path: str | os.PathLike, line: str) -> None:
    """Append one ``\\n``-terminated line to ``path`` and fsync it.

    Used by append-only journals (the study checkpoint): each entry is a
    single self-validating line, so a crash mid-append at worst leaves one
    torn tail line that the reader detects and drops.
    """
    if not line.endswith("\n"):
        line += "\n"
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
