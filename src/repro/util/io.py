"""Crash-safe file I/O primitives.

Everything the project persists — trace/probe archives, study checkpoints,
bench reports — goes through :func:`write_atomic`: readers either see the
previous complete file or the new complete file, never a torn write, even
when the writer is killed mid-write or several processes race on the same
path.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from pathlib import Path

__all__ = ["write_atomic", "write_atomic_bytes", "append_line_durable"]

#: Per-process sequence for fast-path temp names; combined with the pid
#: it never collides between live writers racing on one entry.
_tmp_counter = itertools.count()


def write_atomic(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in ``path``'s directory so the final rename stays
    on one filesystem and is atomic; a crash at any point leaves either
    the old content or the new, and the temp file is removed on failure.
    """
    write_atomic_bytes(path, text.encode("utf-8"))


def write_atomic_bytes(
    path: str | os.PathLike, data: bytes, *, durable: bool = True
) -> None:
    """Binary twin of :func:`write_atomic` (same temp + rename discipline).

    The binary trace store writes its memory-mappable entries through
    this, so concurrent study workers racing on one entry see either the
    old complete file or the new one, never a torn write.

    ``durable=False`` skips the pre-rename ``fsync`` and uses a minimal
    open/write/close/rename sequence (``tempfile.mkstemp`` plus buffered
    ``fdopen`` cost more than the four syscalls themselves for a small
    cache entry).  That keeps the rename atomic for every *live* reader
    but allows a machine crash to leave a renamed entry with missing tail
    pages.  Only callers whose readers detect and recover from torn
    content (the checksummed, self-healing trace store) may opt out;
    anything that must survive power loss intact (checkpoint journals)
    keeps the default.
    """
    if not durable:
        target = os.fspath(path)
        tmp = f"{target}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                view = memoryview(data)
                while view:
                    view = view[os.write(fd, view):]
            finally:
                os.close(fd)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return
    target = Path(path)
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def append_line_durable(path: str | os.PathLike, line: str) -> None:
    """Append one ``\\n``-terminated line to ``path`` and fsync it.

    Used by append-only journals (the study checkpoint): each entry is a
    single self-validating line, so a crash mid-append at worst leaves one
    torn tail line that the reader detects and drops.
    """
    if not line.endswith("\n"):
        line += "\n"
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
