"""Small argument-validation helpers used across the package.

The simulators are configuration-heavy; failing fast with a precise message
on a bad machine or application spec is far cheaper than debugging a NaN
three layers down the convolution.
"""

from __future__ import annotations

from collections.abc import Container

__all__ = ["check_positive", "check_fraction", "check_in"]


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    v = float(value)
    if v != v:  # NaN
        raise ValueError(f"{name} must not be NaN")
    if allow_zero:
        if v < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_in(name: str, value: object, allowed: Container) -> object:
    """Validate that ``value`` is a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
