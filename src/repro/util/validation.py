"""Small argument-validation helpers used across the package.

The simulators are configuration-heavy; failing fast with a precise message
on a bad machine or application spec is far cheaper than debugging a NaN
three layers down the convolution.
"""

from __future__ import annotations

import difflib
from collections.abc import Container, Iterable

__all__ = [
    "check_positive",
    "check_fraction",
    "check_in",
    "nearest_ids",
    "check_known",
]


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    v = float(value)
    if v != v:  # NaN
        raise ValueError(f"{name} must not be NaN")
    if allow_zero:
        if v < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_in(name: str, value: object, allowed: Container) -> object:
    """Validate that ``value`` is a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def nearest_ids(value: object, known: Iterable[object], n: int = 3) -> tuple[str, ...]:
    """The ``n`` valid identifiers closest to a mistyped ``value``.

    Strings match fuzzily (:func:`difflib.get_close_matches`, case folded);
    numbers rank by absolute distance.  Used by the service boundary to turn
    "unknown application" into an actionable 400 instead of a bare error.
    """
    candidates = list(known)
    if not candidates:
        return ()
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        numeric = [c for c in candidates if isinstance(c, (int, float))]
        ranked = sorted(numeric, key=lambda c: (abs(c - value), c))
        return tuple(str(c) for c in ranked[:n])
    text = str(value)
    by_name = {str(c): c for c in candidates}
    matches = difflib.get_close_matches(text, by_name, n=n, cutoff=0.4)
    if not matches:  # fall back to case-insensitive prefix matches
        low = text.lower()
        matches = [name for name in by_name if name.lower().startswith(low[:3])][:n]
    return tuple(matches)


def check_known(kind: str, value: object, known: Iterable[object]) -> object:
    """Validate ``value`` against a registry, raising a structured error.

    Unlike :func:`check_in` this raises
    :class:`~repro.core.errors.UnknownIdError` carrying the full known set
    *and* the nearest matches, which the HTTP layer renders as a 400 body.
    """
    # Imported lazily: util is the bottom of the dependency stack, and a
    # module-level import of repro.core would be circular.
    from repro.core.errors import UnknownIdError

    candidates = list(known)
    if value in candidates:
        return value
    raise UnknownIdError(
        kind,
        value,
        tuple(str(c) for c in candidates),
        nearest_ids(value, candidates),
    )
