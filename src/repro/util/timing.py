"""Per-stage wall-clock accounting for the study pipeline.

A :class:`StageTimer` is a named bag of accumulated seconds.  The study
runner threads one through tracing, probing and convolution so a run can
report *where* its time went (trace / probe / cache_model / execute /
convolve) — the breakdown `scripts/bench_study.py` records in
``BENCH_study.json``.  All methods tolerate a ``None`` timer at call sites
via :func:`StageTimer.time` being cheap, but callers typically guard with
``if timer is not None`` to keep the hot path free of context managers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulate wall-clock seconds under named stages."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager adding the enclosed wall time to ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def add(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` to ``stage``'s accumulator."""
        self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds

    def merge(self, other: dict[str, float]) -> None:
        """Fold another breakdown (e.g. from a worker process) into this one."""
        for stage, seconds in other.items():
            self.add(stage, seconds)

    def get(self, stage: str) -> float:
        """Accumulated seconds for ``stage`` (0 when never timed)."""
        return self._seconds.get(stage, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Snapshot of all stages, insertion-ordered."""
        return dict(self._seconds)
