"""Deterministic, key-derived random number generation.

Every stochastic element of the reproduction (execution noise, address-stream
sampling, load-imbalance draws) derives its generator from a *stable key* so
that the full study is bit-reproducible across runs, machines and Python
versions.  Keys are arbitrary tuples of strings/numbers hashed with BLAKE2b.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_seed", "stable_rng"]


def stable_seed(*keys: object) -> int:
    """Derive a 64-bit seed from an arbitrary tuple of hashable keys.

    The mapping is stable across processes (unlike :func:`hash`, which is
    salted for strings) and well-mixed: nearby keys produce unrelated seeds.

    Parameters
    ----------
    *keys:
        Any sequence of values with a stable ``repr`` (strings, ints, floats,
        tuples thereof).

    Returns
    -------
    int
        A seed in ``[0, 2**64)``.
    """
    h = hashlib.blake2b(digest_size=8)
    for key in keys:
        h.update(repr(key).encode("utf-8"))
        h.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "little")


def stable_rng(*keys: object) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` seeded from ``keys``.

    Two calls with equal keys return independent generator objects in
    identical states.
    """
    return np.random.default_rng(stable_seed(*keys))
