"""Byte/rate/time unit constants and human-readable formatting helpers."""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_rate",
    "format_seconds",
]

# Decimal units (used for bandwidths, matching vendor GB/s conventions).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary units (used for cache and memory sizes).
KIB = 1_024
MIB = 1_024**2
GIB = 1_024**3


def format_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``'64.0 KiB'``."""
    n = float(n)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {suffix}"
    return f"{n:.0f} B"


def format_rate(bytes_per_second: float) -> str:
    """Format a bandwidth with a decimal suffix, e.g. ``'12.3 GB/s'``."""
    v = float(bytes_per_second)
    for suffix, scale in (("GB/s", GB), ("MB/s", MB), ("KB/s", KB)):
        if abs(v) >= scale:
            return f"{v / scale:.2f} {suffix}"
    return f"{v:.1f} B/s"


def format_seconds(seconds: float) -> str:
    """Format a duration adaptively (``'823 us'``, ``'12.4 s'``, ``'2h03m'``)."""
    s = float(seconds)
    if s < 1e-3:
        return f"{s * 1e6:.0f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 120.0:
        return f"{s:.1f} s"
    if s < 7200.0:
        return f"{s / 60.0:.1f} min"
    hours = int(s // 3600)
    minutes = int(round((s - 3600 * hours) / 60))
    return f"{hours}h{minutes:02d}m"
