"""Capped exponential backoff with deterministic seeded jitter.

Promoted out of the study engine so every retry loop in the project — the
study's chunk retries *and* the prediction service's half-open breaker
probes — backs off on the same schedule: ``min(cap, base * 2**round)``
scaled by a jitter factor in ``[0.5, 1.5)`` drawn from
:func:`repro.util.rng.stable_rng`.

The jitter is *seeded by the caller's keys*, not by wall clock: distinct
callers desynchronise their retry storms while any given caller backs off
identically on every run — which is what lets chaos tests assert recovery
timing exactly.
"""

from __future__ import annotations

from repro.util.rng import stable_rng

__all__ = ["backoff_seconds", "BACKOFF_BASE_SECONDS", "BACKOFF_CAP_SECONDS"]

#: Default schedule: chunks and breaker probes are seconds-scale at most,
#: so the base is small and the cap keeps round N from stalling a study.
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_CAP_SECONDS = 2.0


def backoff_seconds(
    round_index: int,
    *keys: object,
    base: float = BACKOFF_BASE_SECONDS,
    cap: float = BACKOFF_CAP_SECONDS,
) -> float:
    """Backoff before retry number ``round_index`` (0-based), in seconds.

    ``keys`` join the jitter's RNG key so independent retry loops spread
    out while each one's schedule is reproducible run-to-run.  ``base``
    and ``cap`` tailor the curve: the study engine keeps the defaults,
    the circuit breaker grows its re-open cooldown from its own base.
    """
    if round_index < 0:
        raise ValueError(f"round_index must be >= 0, got {round_index!r}")
    rng = stable_rng("backoff", round_index, *keys)
    scale = min(cap, base * (2.0**round_index))
    return scale * (0.5 + rng.random())
