"""Optional compiled-kernel backend, selected by the ``REPRO_JIT`` knob.

The hot numeric kernels (the executor's per-level bandwidth accumulation,
the overlap combine shared by executor and convolver) exist in two
byte-identical forms: a NumPy ufunc chain (always available) and an
explicit-loop twin suitable for numba's ``njit``.  ``REPRO_JIT=numba``
selects the compiled twins; any other value — or a missing/broken numba
install — falls back to the NumPy chains with a one-line warning, never
an error.  Both twins perform the same IEEE-754 operations in the same
order (``fastmath`` stays off), so the selection can never move a bit of
any prediction; ``scripts/check_jit.py`` asserts exactly that in CI.
"""

from __future__ import annotations

import logging
import os
from typing import Callable

__all__ = ["active_backend", "compile_kernel", "refresh"]

log = logging.getLogger(__name__)

#: Environment variable naming the kernel backend ("" / "numba").
ENV_VAR = "REPRO_JIT"

_OFF_VALUES = {"", "0", "off", "none", "numpy"}

_state: dict = {"checked": False, "backend": ""}


def requested_backend() -> str:
    """The raw ``REPRO_JIT`` request (lowercased, unvalidated)."""
    return os.environ.get(ENV_VAR, "").strip().lower()


def active_backend() -> str:
    """``"numba"`` when requested *and* importable, else ``""`` (NumPy).

    The check runs once per process (import attempts are not free) and is
    cached; :func:`refresh` re-evaluates it for tests that toggle the
    environment.
    """
    if not _state["checked"]:
        name = requested_backend()
        backend = ""
        if name in _OFF_VALUES:
            backend = ""
        elif name == "numba":
            try:
                import numba  # noqa: F401

                backend = "numba"
            except Exception as exc:  # ImportError or a broken install
                log.warning(
                    "REPRO_JIT=numba requested but numba is unavailable "
                    "(%s); using the NumPy kernels (identical results)",
                    exc,
                )
        else:
            log.warning(
                "unknown REPRO_JIT backend %r (expected 'numba'); "
                "using the NumPy kernels",
                name,
            )
        _state["backend"] = backend
        _state["checked"] = True
    return _state["backend"]


def refresh() -> None:
    """Drop the cached backend decision (test hook for env toggling)."""
    _state["checked"] = False
    _state["backend"] = ""


def compile_kernel(loops_impl: Callable, numpy_impl: Callable) -> Callable:
    """Return the kernel to call: jitted loops under numba, else NumPy.

    ``loops_impl`` must be numba-``njit``-compatible and perform the same
    float operations in the same order as ``numpy_impl`` (the contract CI
    verifies).  Compilation failure degrades to the NumPy twin with a
    warning — a broken numba can slow the pipeline down but never break
    or change it.
    """
    if active_backend() == "numba":
        try:
            from numba import njit

            return njit(cache=True, fastmath=False)(loops_impl)
        except Exception as exc:  # pragma: no cover - needs a broken numba
            log.warning(
                "numba compilation of %s failed (%s); using the NumPy twin",
                getattr(loops_impl, "__name__", loops_impl),
                exc,
            )
    return numpy_impl
