"""Shared utilities: deterministic RNG, unit helpers, table rendering, validation.

These are the lowest-level building blocks of :mod:`repro`; every other
subpackage may depend on them, and they depend on nothing but NumPy.
"""

from repro.util.io import append_line_durable, write_atomic
from repro.util.rng import stable_rng, stable_seed
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    GB,
    MB,
    KB,
    format_bytes,
    format_rate,
    format_seconds,
)
from repro.util.tables import Table, render_table
from repro.util.validation import check_positive, check_fraction, check_in

__all__ = [
    "write_atomic",
    "append_line_durable",
    "stable_rng",
    "stable_seed",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "Table",
    "render_table",
    "check_positive",
    "check_fraction",
    "check_in",
]
