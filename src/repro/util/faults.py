"""Deterministic fault injection for the study engine.

A :class:`FaultPlan` is a *seeded* chaos schedule: every injection decision
(crash this chunk attempt? stall it? corrupt this store write?) is a
Bernoulli draw from :func:`repro.util.rng.stable_rng` keyed by the plan's
seed plus the decision's identity, so a given plan misbehaves in exactly
the same places on every run.  That determinism is what makes the chaos
suite a *test*: the retry/resume/self-heal paths are exercised on known
chunks and the recovered study output can be asserted byte-identical to a
fault-free run.

Plans are plain frozen dataclasses of numbers, so they pickle cleanly into
study worker processes, and the CLI builds one from a compact
``key=value`` spec string (``--inject-faults crash=0.25,stall=0.1,seed=7``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

from repro.core.errors import WorkerCrashError
from repro.util.clock import as_clock
from repro.util.rng import stable_rng

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded schedule of injected faults.

    Attributes
    ----------
    seed:
        Root of every injection decision; two plans with equal fields make
        identical decisions everywhere.
    crash_rate:
        Probability a chunk attempt raises (or hard-kills, see
        ``hard_crashes``) before computing anything.
    stall_rate:
        Probability a chunk attempt sleeps ``stall_seconds`` first —
        enough to trip a tight ``chunk_timeout`` deadline.
    corrupt_rate:
        Probability a :class:`~repro.tracing.store.TraceStore` write is
        corrupted on disk (one byte flipped), proving the checksummed
        load path invalidates and re-traces.
    stall_seconds:
        Injected stall duration.
    hard_crashes:
        When true, a crash inside a pool worker calls ``os._exit`` —
        killing the process and breaking the pool — instead of raising;
        this drives the ``BrokenProcessPool``/pool-rebuild path.  In the
        parent process a crash always raises.
    abort_after:
        Abort the whole study (``StudyAbortedError``) after this many
        chunks have completed in the current run — the harness's
        simulation of a mid-run kill, used to test checkpoint resume.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_seconds: float = 0.25
    hard_crashes: bool = False
    abort_after: int | None = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.stall_seconds < 0:
            raise ValueError(f"stall_seconds must be >= 0, got {self.stall_seconds!r}")
        if self.abort_after is not None and self.abort_after < 0:
            raise ValueError(f"abort_after must be >= 0, got {self.abort_after!r}")

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _hit(self, rate: float, kind: str, *key: object) -> bool:
        if rate <= 0.0:
            return False
        return bool(stable_rng("faults", self.seed, kind, *key).random() < rate)

    def should_crash(self, label: str, attempt: int) -> bool:
        """Whether this (chunk, attempt) is scheduled to crash."""
        return self._hit(self.crash_rate, "crash", label, attempt)

    def should_stall(self, label: str, attempt: int) -> bool:
        """Whether this (chunk, attempt) is scheduled to stall."""
        return self._hit(self.stall_rate, "stall", label, attempt)

    def should_corrupt(self, *key: object) -> bool:
        """Whether the store write identified by ``key`` is corrupted."""
        return self._hit(self.corrupt_rate, "corrupt", *key)

    # ------------------------------------------------------------------
    # injections
    # ------------------------------------------------------------------
    def inject_chunk_faults(
        self, label: str, attempt: int, *, in_worker: bool = False, clock=None
    ) -> None:
        """Apply this attempt's scheduled stall and/or crash.

        Called at the top of a study chunk.  The stall runs first so a
        stalled-then-crashed attempt still exercises the deadline path.
        ``clock`` (a :class:`~repro.util.clock.Clock`) carries the stall:
        under the simulation harness's virtual clock a stall advances
        simulated time instead of wall-waiting.
        """
        if self.should_stall(label, attempt):
            as_clock(clock).sleep(self.stall_seconds)
        if self.should_crash(label, attempt):
            if in_worker and self.hard_crashes:
                os._exit(13)  # no cleanup: simulate a genuine worker death
            raise WorkerCrashError(
                f"injected crash: chunk {label!r} attempt {attempt}"
            )

    def corrupt_text(self, text: str, *key: object) -> str:
        """Deterministically damage ``text`` (flip one byte, drop the tail)."""
        rng = stable_rng("faults", self.seed, "corrupt-bytes", *key)
        if not text:
            return "\x00"
        if rng.random() < 0.5:  # truncation: the torn-write shape
            return text[: int(rng.integers(0, len(text)))]
        i = int(rng.integers(0, len(text)))
        flipped = chr(ord(text[i]) ^ 0x01)
        return text[:i] + flipped + text[i + 1 :]

    def corrupt_bytes(self, data: bytes, *key: object) -> bytes:
        """Binary twin of :meth:`corrupt_text` (same decision stream).

        The seeded draws use the same key derivation, so a plan corrupts
        a given store entry identically whether it is JSON or binary.
        """
        rng = stable_rng("faults", self.seed, "corrupt-bytes", *key)
        if not data:
            return b"\x00"
        if rng.random() < 0.5:  # truncation: the torn-write shape
            return data[: int(rng.integers(0, len(data)))]
        i = int(rng.integers(0, len(data)))
        return data[:i] + bytes((data[i] ^ 0x01,)) + data[i + 1 :]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value[,key=value...]`` CLI spec.

        Keys are the short CLI names: ``crash``, ``stall``, ``corrupt``
        (rates), ``seed``, ``stall_seconds``, ``hard`` (0/1) and
        ``abort_after``.  Example: ``crash=0.25,stall=0.1,seed=7``.
        """
        aliases = {"crash": "crash_rate", "stall": "stall_rate", "corrupt": "corrupt_rate"}
        casts = {
            "seed": int,
            "crash_rate": float,
            "stall_rate": float,
            "corrupt_rate": float,
            "stall_seconds": float,
            "hard_crashes": lambda v: bool(int(v)),
            "abort_after": int,
        }
        known = {f.name for f in fields(cls)}
        plan = cls()
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, value = part.partition("=")
            name = aliases.get(key, "hard_crashes" if key == "hard" else key)
            if not sep or name not in known:
                options = ", ".join(sorted(set(aliases) | known | {"hard"}))
                raise ValueError(
                    f"bad fault spec item {part!r}; expected key=value with "
                    f"key in: {options}"
                )
            plan = replace(plan, **{name: casts[name](value)})
        return plan
