"""Validated option enums shared by every pipeline layer.

The ``mode`` / ``cache_model`` knob pair used to travel the codebase as
bare strings, each consumer re-validating (or forgetting to validate) its
own copy — an invalid value could survive config construction and only
blow up mid-study inside a worker process.  These enums centralise the
vocabulary: :meth:`~OptionEnum.coerce` turns user input into the enum at
*construction* time, raising a :class:`ValueError` that names the knob and
the known values, and every layer (study config, prediction service,
tracer, store, CLI) shares the single definition.

Both enums subclass :class:`str`, so existing call sites keep working
unchanged: ``cfg.mode == "relative"`` is still true, f-strings render the
bare value, pickling to study workers is transparent, and
``json.dumps`` emits the plain string.  ``repr`` is pinned to the plain
string's repr so checkpoint config digests (which hash field reprs) are
byte-identical to the stringly-typed era.

The definitions live in :mod:`repro.util` — the bottom of the dependency
stack — because the tracer and store (below :mod:`repro.core`) validate
with them too; :mod:`repro.core.options` is the canonical public home.
"""

from __future__ import annotations

import enum

__all__ = ["Mode", "CacheModel"]


class OptionEnum(str, enum.Enum):
    """A closed string vocabulary that validates at construction."""

    @classmethod
    def coerce(cls, value: object) -> "OptionEnum":
        """Return the member for ``value``, naming the knob on failure."""
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown {cls.option_name()} {value!r}; known: {known}"
            ) from None

    @classmethod
    def option_name(cls) -> str:
        """Human name of the knob (subclasses override)."""
        return cls.__name__.lower()

    @classmethod
    def values(cls) -> tuple[str, ...]:
        """The raw string vocabulary, in declaration order."""
        return tuple(m.value for m in cls)

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        # Checkpoint identity digests hash repr(field); keeping the plain
        # string's repr means enum adoption never invalidates a journal.
        return repr(self.value)


class Mode(OptionEnum):
    """Convolver anchoring: base-relative (the paper) or absolute."""

    RELATIVE = "relative"
    ABSOLUTE = "absolute"

    @classmethod
    def option_name(cls) -> str:
        return "mode"


class CacheModel(OptionEnum):
    """Cache accounting back-end used when tracing with ``cache_sim``."""

    ANALYTIC = "analytic"
    EXACT = "exact"

    @classmethod
    def option_name(cls) -> str:
        return "cache_model"
