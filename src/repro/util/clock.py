"""The injectable time source every time consumer reads through.

Cornebize & Legrand (PAPERS.md) show how small timing perturbations
silently distort simulation-based prediction; our chaos suites therefore
cannot afford to *measure* time — they must *control* it.  A
:class:`Clock` bundles the three operations the codebase performs against
time — read a monotonic instant, sleep, and wait on an event with a
timeout — behind one seam:

* :class:`SystemClock` is the production implementation (thin veneer over
  :mod:`time` / :meth:`threading.Event.wait`); the module-level
  :data:`SYSTEM_CLOCK` singleton is the default everywhere, so production
  behaviour is unchanged.
* :class:`VirtualClock` is the simulation implementation: ``sleep``
  *advances* virtual time instead of blocking, so a chaos episode that
  used to spend ~60 s wall-waiting on stalls, breaker cooldowns and retry
  backoffs completes in milliseconds — and, because compute takes zero
  virtual time, every virtual-clock reading is a pure function of the
  schedule, which is what makes episode transcripts bit-reproducible.

The whole package's rule (enforced by ``scripts/check_layering.py``): no
module outside this file may call ``time.time``/``time.monotonic``/
``time.sleep`` directly.  ``time.perf_counter`` stays allowed — it only
ever *measures* wall cost for diagnostics and never steers control flow.

Components accept either a :class:`Clock` or — for compatibility with the
pre-existing ``clock=`` callables in tests — a bare zero-argument
monotonic callable; :func:`as_clock` normalises both.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "VirtualTimeLimitError",
    "SYSTEM_CLOCK",
    "as_clock",
]


class Clock:
    """Interface: the three time operations a component may perform."""

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` pass (block, or advance virtual time)."""
        raise NotImplementedError

    def wait(self, event: "threading.Event", timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for ``event``; True when set."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real wall time — the production default."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait(self, event: "threading.Event", timeout: float) -> bool:
        return event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<SystemClock>"


#: The process-wide default clock.  Components default their ``clock``
#: parameter to this, never to :mod:`time` directly.
SYSTEM_CLOCK = SystemClock()


class VirtualTimeLimitError(RuntimeError):
    """Virtual time ran past the episode horizon.

    Raised by :class:`VirtualClock` when a sleep or skew would advance
    past ``limit`` — the simulation harness's deadlock/livelock detector:
    a retry loop that would spin forever in real time burns through the
    virtual horizon in microseconds and surfaces here instead of hanging.
    """


class VirtualClock(Clock):
    """Deterministic simulated time.

    ``sleep(s)`` advances the clock by ``s`` immediately instead of
    blocking, and ``advance(s)`` jumps it explicitly (the schedule DSL's
    clock-skew event).  Reads and advances are lock-protected so the
    write-behind store's drain thread may *read* the clock concurrently,
    but only the episode's driving thread should ever advance it — a
    background thread advancing virtual time would make the timeline
    racy, which is exactly what the harness exists to prevent.

    ``wait`` does **not** consume virtual time: a background thread
    polling an event (the store writer's drain cadence) gets a tiny real
    wait instead, so it keeps draining promptly without perturbing the
    simulated timeline.

    Parameters
    ----------
    start:
        Initial virtual instant (seconds).
    limit:
        Hard horizon; advancing past it raises
        :class:`VirtualTimeLimitError`.  ``None`` disables the guard.
    """

    #: Real seconds a background thread blocks per :meth:`wait` poll.
    WAIT_SLICE_SECONDS = 0.0005

    def __init__(self, start: float = 0.0, *, limit: float | None = None):
        if limit is not None and limit <= start:
            raise ValueError(f"limit must be > start, got {limit!r} <= {start!r}")
        self._now = float(start)
        self._limit = limit
        self._lock = threading.Lock()
        #: Total virtual seconds consumed by sleeps (diagnostic: the wall
        #: time a real-clock run of the same episode would have wasted).
        self.slept_total = 0.0

    @property
    def limit(self) -> float | None:
        return self._limit

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def _advance_locked(self, seconds: float) -> None:
        target = self._now + seconds
        if self._limit is not None and target > self._limit:
            self._now = self._limit
            raise VirtualTimeLimitError(
                f"virtual time would pass the {self._limit:g}s horizon "
                f"(at {target:g}s) — runaway sleep/retry loop"
            )
        self._now = target

    def advance(self, seconds: float) -> None:
        """Jump virtual time forward by ``seconds`` (>= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds!r}s)")
        with self._lock:
            self._advance_locked(seconds)

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._lock:
            self.slept_total += seconds
            self._advance_locked(seconds)

    def wait(self, event: "threading.Event", timeout: float) -> bool:
        # Real micro-wait, zero virtual cost: see the class docstring.
        return event.wait(min(timeout, self.WAIT_SLICE_SECONDS))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualClock now={self.monotonic():g}s limit={self._limit!r}>"


class _CallableClock(Clock):
    """Adapter for the legacy ``clock=`` zero-argument monotonic callable.

    Tests that drive a component with a bare fake-monotonic lambda keep
    working; ``sleep``/``wait`` fall back to the system implementations
    (such tests never sleep through the component under test).
    """

    def __init__(self, monotonic: Callable[[], float]):
        self._monotonic = monotonic

    def monotonic(self) -> float:
        return self._monotonic()

    def sleep(self, seconds: float) -> None:
        SYSTEM_CLOCK.sleep(seconds)

    def wait(self, event: "threading.Event", timeout: float) -> bool:
        return SYSTEM_CLOCK.wait(event, timeout)


def as_clock(clock: "Clock | Callable[[], float] | None") -> Clock:
    """Normalise ``clock`` to a :class:`Clock`.

    ``None`` means the system clock; a :class:`Clock` passes through; a
    bare monotonic callable (the historical injection shape) is wrapped.
    """
    if clock is None:
        return SYSTEM_CLOCK
    if isinstance(clock, Clock):
        return clock
    if callable(clock):
        return _CallableClock(clock)
    raise TypeError(f"clock must be a Clock or a zero-argument callable, got {clock!r}")
