"""repro — reproduction of Carrington, Laurenzano, Snavely, Campbell & Davis,
"How Well Can Simple Metrics Represent the Performance of HPC Applications?"
(SC'05).

The package implements the paper's full pipeline on simulated substrates:

* machine models of the eleven HPCMP systems (:mod:`repro.machines`);
* memory hierarchy + cache simulator + stride detector (:mod:`repro.memory`);
* interconnect models (:mod:`repro.network`);
* the five TI-05 application models and a full-fidelity ground-truth
  executor (:mod:`repro.apps`);
* the synthetic probes — HPL, STREAM, GUPS, MAPS/ENHANCED MAPS, NETBENCH
  (:mod:`repro.probes`);
* MetaSim-style tracing (:mod:`repro.tracing`);
* the nine Table 3 metrics and the MetaSim Convolver (:mod:`repro.core`);
* the full 150-run / 1350-prediction study with the paper's tables and
  figures (:mod:`repro.study`).

Quickstart::

    from repro import PerformancePredictor, observed_time, get_machine, get_application

    predictor = PerformancePredictor()                    # base: NAVO p690
    t_pred = predictor.predict("AVUS-standard", "ARL_Opteron", cpus=64, metric=9)
    t_true = observed_time(get_machine("ARL_Opteron"), get_application("AVUS-standard"), 64)
"""

from repro.apps import (
    ApplicationModel,
    BasicBlock,
    CommEvent,
    GroundTruthExecutor,
    get_application,
    list_applications,
    observed_time,
)
from repro.core import (
    ALL_METRICS,
    REGISTRY,
    BalancedRating,
    CacheModel,
    Convolver,
    ErrorSummary,
    MemoryModel,
    Metric,
    MetricSpec,
    Mode,
    PerformancePredictor,
    PredictionContext,
    Term,
    absolute_error,
    get_metric,
    rank_agreement,
    rank_systems,
    signed_error,
    summarise,
)
from repro.machines import (
    BASE_SYSTEM,
    TARGET_SYSTEMS,
    MachineSpec,
    get_machine,
    list_machines,
)
from repro.probes import MachineProbes, probe_machine
from repro.study import StudyConfig, StudyResult, run_study
from repro.tracing import ApplicationTrace, MetaSimTracer, trace_application

__version__ = "1.0.0"


def __getattr__(name: str):
    # The deprecated data-dict re-exports resolve lazily through the
    # package shims, so ``import repro`` itself never warns — only code
    # that still touches repro.MACHINES / repro.APPLICATIONS does.
    if name == "MACHINES":
        from repro import machines

        return machines.MACHINES
    if name == "APPLICATIONS":
        from repro import apps

        return apps.APPLICATIONS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    # machines
    "MachineSpec",
    "MACHINES",
    "TARGET_SYSTEMS",
    "BASE_SYSTEM",
    "get_machine",
    "list_machines",
    # applications
    "ApplicationModel",
    "BasicBlock",
    "CommEvent",
    "APPLICATIONS",
    "get_application",
    "list_applications",
    "GroundTruthExecutor",
    "observed_time",
    # probes
    "MachineProbes",
    "probe_machine",
    # tracing
    "ApplicationTrace",
    "MetaSimTracer",
    "trace_application",
    # core
    "Metric",
    "ALL_METRICS",
    "get_metric",
    "REGISTRY",
    "MetricSpec",
    "Term",
    "Mode",
    "CacheModel",
    "PredictionContext",
    "Convolver",
    "MemoryModel",
    "PerformancePredictor",
    "BalancedRating",
    "signed_error",
    "absolute_error",
    "summarise",
    "ErrorSummary",
    "rank_systems",
    "rank_agreement",
    # study
    "run_study",
    "StudyConfig",
    "StudyResult",
]
