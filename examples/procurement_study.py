"""Procurement scenario: evaluate a machine that does not exist yet.

A vendor proposes an upgraded Opteron system (faster clock, DDR2-class
memory, InfiniBand-class interconnect).  No application has ever run on it —
but the vendor can report HPL/STREAM/GUPS/MAPS/NETBENCH numbers for a
prototype node.  This example builds the hypothetical machine, probes it,
and predicts the full TI-05 workload against the incumbent systems, exactly
the acquisition workflow the paper's framework targets.

Run:  python examples/procurement_study.py
"""

from repro import (
    PerformancePredictor,
    get_application,
    get_machine,
    list_applications,
)
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.util.units import GB, KIB, MIB


def proposed_machine() -> MachineSpec:
    """The vendor's 2.6 GHz Opteron + InfiniBand proposal."""
    return MachineSpec(
        name="VENDOR_Opteron26",
        architecture="AMD_Opteron_2.6GHz_IB",
        vendor="AMD",
        model="Opteron-next",
        cpus=4096,
        processor=ProcessorSpec(
            clock_ghz=2.6,
            flops_per_cycle=2.0,
            ilp_efficiency=0.82,
            dependent_fp_efficiency=0.17,
        ),
        memory_levels=(
            MemoryLevelSpec("L1", 64 * KIB, 20.0 * GB, 1.2e-9, 64, mlp=4.0, dependent_stream_factor=0.55),
            MemoryLevelSpec("L2", 1 * MIB, 10.0 * GB, 5.0e-9, 64, mlp=6.0, dependent_stream_factor=0.55),
            MemoryLevelSpec("MEM", float("inf"), 4.5 * GB, 65e-9, 64, mlp=10.0, dependent_stream_factor=0.5),
        ),
        network=NetworkSpec("InfiniBand", 4.0e-6, 0.9 * GB, collective_efficiency=0.85, contention_factor=1.15),
        overlap_factor=0.78,
        noise_level=0.08,
        description="hypothetical vendor proposal",
    )


def main() -> None:
    vendor = proposed_machine()
    incumbents = ["NAVO_655", "ARL_Opteron", "ARL_Altix"]
    predictor = PerformancePredictor()

    print("Predicted times-to-solution (s), Metric #9 (HPL+MAPS+NET+DEP)")
    print()
    header = f"{'test case':22s} {'cpus':>5s} " + " ".join(
        f"{name:>16s}" for name in incumbents + [vendor.name]
    )
    print(header)
    print("-" * len(header))

    speedups = []
    for label in list_applications():
        app = get_application(label)
        cpus = app.cpu_counts[1]  # the middle processor count
        row = [f"{label:22s} {cpus:5d}"]
        times = {}
        for name in incumbents:
            machine = get_machine(name)
            t = predictor.predict(app, machine, cpus, metric=9)
            times[name] = t
            row.append(f"{t:16.0f}")
        t_vendor = predictor.predict(app, vendor, cpus, metric=9)
        times[vendor.name] = t_vendor
        row.append(f"{t_vendor:16.0f}")
        print(" ".join(row))
        best_incumbent = min(times[n] for n in incumbents)
        speedups.append(best_incumbent / t_vendor)

    print()
    geo = 1.0
    for s in speedups:
        geo *= s
    geo **= 1.0 / len(speedups)
    print(
        f"Workload-level speedup of the proposal over the best incumbent: "
        f"{geo:.2f}x (geometric mean over the five TI-05 test cases)"
    )
    print()
    print("No application ever ran on VENDOR_Opteron26 — only its probe")
    print("results and the base-system traces fed these predictions.")


if __name__ == "__main__":
    main()
