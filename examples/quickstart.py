"""Quickstart: predict one application's runtime on one target system.

Traces AVUS (standard test case) on the base NAVO p690, probes the ARL
Opteron cluster, and predicts the 64-processor wall-clock time with every
metric of the paper's Table 3, comparing against the simulated "real" run.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_METRICS,
    PerformancePredictor,
    get_application,
    get_machine,
    observed_time,
    signed_error,
)


def main() -> None:
    app = get_application("AVUS-standard")
    target = get_machine("ARL_Opteron")
    cpus = 64

    print(f"Application : {app.label} — {app.description}")
    print(f"Target      : {target.name} ({target.description})")
    print(f"Processors  : {cpus}")
    print()

    predictor = PerformancePredictor()  # traces + anchors on the NAVO p690
    actual = observed_time(target, app, cpus)
    print(f"simulated 'real' runtime: {actual:8.0f} s")
    print()
    print(f"{'metric':28s} {'predicted (s)':>13s} {'error':>8s}")
    for number, metric in ALL_METRICS.items():
        predicted = predictor.predict(app, target, cpus, metric=number)
        err = signed_error(predicted, actual)
        print(f"{metric.label:28s} {predicted:13.0f} {err:+7.1f}%")

    print()
    print("Metric #9 (HPL+MAPS+NET+DEP) is the paper's best predictor;")
    print("metric #1 (the HPL ratio) is the Top500-style baseline.")


if __name__ == "__main__":
    main()
