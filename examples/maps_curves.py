"""Regenerate Figure 1: MAPS bandwidth curves across the memory hierarchy.

Sweeps MEMBENCH MAPS over three systems and prints both the log-log ASCII
chart (the paper's Figure 1 shows the unit-stride curves) and a CSV of all
four curve families (unit/random, independent/dependent) for external
plotting.

Run:  python examples/maps_curves.py [--csv]
"""

import sys

from repro import get_machine, probe_machine
from repro.reporting.ascii_charts import line_chart
from repro.util.units import KIB, MIB

SYSTEMS = ("ARL_Opteron", "ARL_Altix", "NAVO_655")


def main() -> None:
    maps = {name: probe_machine(get_machine(name)).maps for name in SYSTEMS}

    if "--csv" in sys.argv:
        print("system,curve,working_set_bytes,bandwidth_bytes_per_s")
        for name, result in maps.items():
            for kind in ("unit", "random", "unit_dep", "random_dep"):
                curve = result.curve(kind)
                for size, bw in zip(curve.sizes, curve.bandwidths):
                    print(f"{name},{kind},{size:.0f},{bw:.0f}")
        return

    series = {
        name: (result.unit.sizes, result.unit.bandwidths / 1e9)
        for name, result in maps.items()
    }
    print(
        line_chart(
            series,
            title="Figure 1. Unit-stride memory bandwidth versus working-set size",
            x_label="working set (bytes, log scale)",
            y_label="bandwidth (GB/s, log scale)",
        )
    )

    print("Cache-level winners (paper Section 3):")
    probes_at = {
        "L1-resident (16 KiB)": 16 * KIB,
        "L2-resident (128 KiB)": 128 * KIB,
        "main memory (256 MiB)": 256 * MIB,
    }
    for label, ws in probes_at.items():
        best = max(SYSTEMS, key=lambda n: maps[n].unit.lookup(ws))
        bw = maps[best].unit.lookup(ws) / 1e9
        print(f"  {label:22s}: {best} ({bw:.1f} GB/s)")
    print()
    print("'the ranking of systems according to memory performance greatly")
    print(" depends on the stride signature of the application' — Section 3")


if __name__ == "__main__":
    main()
