"""Model your own application and predict it across the HPCMP systems.

Builds a small spectral-element solver model from scratch (basic blocks
with operation counts, stride signatures, working-set laws and an MPI
signature), then runs the full pipeline: trace on the base system, probe
the targets, convolve, and compare predictions against the simulated truth.

This is the workflow a downstream user follows to apply the framework to a
code the paper never saw.

Run:  python examples/custom_application.py
"""

from repro import (
    PerformancePredictor,
    TARGET_SYSTEMS,
    get_machine,
    observed_time,
    signed_error,
)
from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind


def spectral_solver() -> ApplicationModel:
    """A cache-friendly, FP-dense spectral-element CFD model."""
    return ApplicationModel(
        name="SPECTRE",
        testcase="demo",
        description="spectral-element solver: dense element kernels + halo exchanges",
        cells=4.0e6,
        bytes_per_cell=1800.0,
        timesteps=200,
        cpu_counts=(32, 64, 128),
        blocks=(
            BasicBlock(
                name="element_matvec",  # dense per-element operator: FP rich
                fp_per_cell=4_000.0,
                loads_per_cell=500.0,
                stores_per_cell=120.0,
                stride=StrideHistogram(unit=0.85, short=0.12, random=0.03),
                ws_scale=6.0,
                ws_exponent=1.0 / 3.0,  # per-element working sets stay small
                dependency_fraction=0.05,
                chase_fraction=0.2,
                fp_ilp=0.9,
            ),
            BasicBlock(
                name="gather_scatter",  # element boundary exchange: indirect
                fp_per_cell=300.0,
                loads_per_cell=260.0,
                stores_per_cell=130.0,
                stride=StrideHistogram(unit=0.30, short=0.15, random=0.55),
                ws_exponent=1.0,
                dependency_fraction=0.35,
                chase_fraction=0.7,
                fp_ilp=0.4,
            ),
            BasicBlock(
                name="time_integrator",
                fp_per_cell=600.0,
                loads_per_cell=220.0,
                stores_per_cell=110.0,
                stride=StrideHistogram(unit=0.95, short=0.03, random=0.02),
                ws_exponent=1.0,
                dependency_fraction=0.05,
                chase_fraction=0.2,
                fp_ilp=0.8,
            ),
        ),
        comms=(
            CommEvent(
                name="face_halo",
                kind="p2p",
                count=24.0,
                size_scale=1.2,
                size_exponent=2.0 / 3.0,
                neighbors=6,
            ),
            CommEvent(
                name="cfl_allreduce",
                kind=CollectiveKind.ALLREDUCE,
                count=4.0,
                size_scale=8.0,
            ),
        ),
        serial_fraction=0.001,
        imbalance=0.07,
    )


def main() -> None:
    app = spectral_solver()
    cpus = 64
    predictor = PerformancePredictor()

    print(f"Custom application: {app.label} — {app.description}")
    print(f"Predicting at {cpus} processors with Metric #9 vs simulated truth")
    print()
    print(f"{'system':16s} {'predicted (s)':>13s} {'actual (s)':>11s} {'error':>8s}")
    errors = []
    for name in TARGET_SYSTEMS:
        machine = get_machine(name)
        if cpus > machine.cpus:
            continue
        predicted = predictor.predict(app, machine, cpus, metric=9)
        actual = observed_time(machine, app, cpus)
        err = signed_error(predicted, actual)
        errors.append(abs(err))
        print(f"{name:16s} {predicted:13.0f} {actual:11.0f} {err:+7.1f}%")

    print()
    print(f"average absolute error: {sum(errors) / len(errors):.1f}%")
    print("(an FP-dense spectral code is friendlier to the convolver than")
    print(" the paper's memory-bound TI-05 suite)")


if __name__ == "__main__":
    main()
