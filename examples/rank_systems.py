"""Rank HPC systems for a workload — the paper's motivating scenario.

"Such rankings could be achieved by comparing the performance of
applications across architectures (e.g., system X is 50% faster than system
Y for application Z)."  This example ranks all ten HPCMP targets for HYCOM
at 96 processors three ways — by HPL (Top500 style), by Metric #9, and by
the "real" (simulated) runtimes — and reports how well each predicted
ranking agrees with the truth.

Run:  python examples/rank_systems.py
"""

from repro import (
    PerformancePredictor,
    TARGET_SYSTEMS,
    get_application,
    get_machine,
    observed_time,
    rank_agreement,
    rank_systems,
)


def main() -> None:
    app = get_application("HYCOM-standard")
    cpus = 96
    predictor = PerformancePredictor()

    actual = {}
    by_hpl = {}
    by_metric9 = {}
    for name in TARGET_SYSTEMS:
        machine = get_machine(name)
        if cpus > machine.cpus:
            continue
        actual[name] = observed_time(machine, app, cpus)
        by_hpl[name] = predictor.predict(app, machine, cpus, metric=1)
        by_metric9[name] = predictor.predict(app, machine, cpus, metric=9)

    true_order = rank_systems(actual)
    print(f"Ranking {len(actual)} systems for {app.label} at {cpus} processors")
    print()
    print(f"{'rank':>4s}  {'truth':18s} {'HPL ratio':18s} {'metric #9':18s}")
    for i, (t, h, m9) in enumerate(
        zip(true_order, rank_systems(by_hpl), rank_systems(by_metric9)), start=1
    ):
        print(f"{i:4d}  {t:18s} {h:18s} {m9:18s}")

    print()
    for label, predicted in (("HPL ratio", by_hpl), ("metric #9", by_metric9)):
        agree = rank_agreement(predicted, actual)
        print(
            f"{label:10s}: Kendall tau {agree['kendall_tau']:+.2f}, "
            f"Spearman rho {agree['spearman_rho']:+.2f}"
        )
    print()
    print("A tau near +1 means the predicted purchase order matches reality;")
    print("HPL's tau shows why the Top 500 ordering misleads procurement.")


if __name__ == "__main__":
    main()
