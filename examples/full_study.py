"""Run the paper's complete study and print every table.

This is the whole evaluation section in one command: 145 observed runs,
1305 predictions, Tables 4 and 5, the per-application figures and the
appendix runtime tables — with the paper's published numbers alongside.

Run:  python examples/full_study.py
"""

import time

from repro import run_study
from repro.apps.suite import list_applications
from repro.reporting.ascii_charts import bar_chart
from repro.study.analysis import best_predictor_counts, shape_check
from repro.study.tables import (
    appendix_runtimes,
    figure2_series,
    figures3_7_series,
    table4_overall,
    table5_systems,
)


def main() -> None:
    start = time.perf_counter()
    result = run_study()
    elapsed = time.perf_counter() - start
    print(
        f"Ran {result.n_runs} application executions and "
        f"{result.n_predictions} predictions in {elapsed:.1f} s"
    )
    print()

    print(table4_overall(result).render())
    series = figure2_series(result)
    print(
        bar_chart(
            {f"#{m}": err for m, (err, _s) in series.items()},
            title="Figure 2. Average absolute error by metric",
            errors={f"#{m}": std for m, (_e, std) in series.items()},
        )
    )

    print(table5_systems(result, include_paper=True).render())

    for app in list_applications():
        print(figures3_7_series(result, app).render())
        print(appendix_runtimes(result, app).render())

    counts = best_predictor_counts(result)
    print("Best (or tied) predictor per case:", dict(sorted(counts.items())))

    check = shape_check(result)
    status = "PASS" if check.passed else f"FAIL: {check.failures()}"
    print(f"Qualitative shape check against the paper: {status}")


if __name__ == "__main__":
    main()
